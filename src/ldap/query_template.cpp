#include "ldap/query_template.h"

#include <utility>

#include "ldap/error.h"
#include "ldap/filter_parser.h"

namespace fbdr::ldap {

namespace {

bool is_placeholder(std::string_view value) { return value == kPlaceholder; }

/// Counts `_` placeholders in a skeleton, pre-order.
std::size_t count_slots(const Filter& skeleton) {
  std::size_t count = 0;
  skeleton.for_each_predicate([&](const Filter& p) {
    switch (p.kind()) {
      case FilterKind::Equality:
      case FilterKind::GreaterEq:
      case FilterKind::LessEq:
        if (is_placeholder(p.value())) ++count;
        break;
      case FilterKind::Substring: {
        const SubstringPattern& pat = p.substrings();
        if (is_placeholder(pat.initial)) ++count;
        for (const std::string& part : pat.any) {
          if (is_placeholder(part)) ++count;
        }
        if (is_placeholder(pat.final)) ++count;
        break;
      }
      default:
        break;
    }
  });
  return count;
}

/// Recursive structural unification of a concrete filter against a skeleton.
bool unify(const Filter& tmpl, const Filter& f, const Schema& schema,
           std::vector<std::string>& slots) {
  if (tmpl.kind() != f.kind()) return false;
  if (tmpl.is_composite()) {
    if (tmpl.children().size() != f.children().size()) return false;
    for (std::size_t i = 0; i < tmpl.children().size(); ++i) {
      if (!unify(*tmpl.children()[i], *f.children()[i], schema, slots)) return false;
    }
    return true;
  }
  if (tmpl.attribute() != f.attribute()) return false;
  switch (tmpl.kind()) {
    case FilterKind::Present:
      return true;
    case FilterKind::Equality:
    case FilterKind::GreaterEq:
    case FilterKind::LessEq:
      if (is_placeholder(tmpl.value())) {
        slots.push_back(f.value());
        return true;
      }
      return schema.equals(tmpl.attribute(), tmpl.value(), f.value());
    case FilterKind::Substring: {
      const SubstringPattern& tp = tmpl.substrings();
      const SubstringPattern& fp = f.substrings();
      if (tp.any.size() != fp.any.size()) return false;
      // Components must agree in presence: a template with a non-empty
      // initial only matches filters with a non-empty initial, etc.
      if (tp.initial.empty() != fp.initial.empty()) return false;
      if (tp.final.empty() != fp.final.empty()) return false;
      auto component = [&](const std::string& t, const std::string& v) {
        if (t.empty()) return true;
        if (is_placeholder(t)) {
          slots.push_back(v);
          return true;
        }
        return schema.normalize(tmpl.attribute(), t) ==
               schema.normalize(tmpl.attribute(), v);
      };
      if (!component(tp.initial, fp.initial)) return false;
      for (std::size_t i = 0; i < tp.any.size(); ++i) {
        if (!component(tp.any[i], fp.any[i])) return false;
      }
      return component(tp.final, fp.final);
    }
    default:
      return false;
  }
}

/// Rebuilds a skeleton with placeholders bound from `slots` (consumed in
/// pre-order). Placeholder occurrences beyond the binding count throw.
FilterPtr bind(const Filter& tmpl, const std::vector<std::string>& slots,
               std::size_t& next) {
  if (tmpl.is_composite()) {
    std::vector<FilterPtr> children;
    children.reserve(tmpl.children().size());
    for (const FilterPtr& child : tmpl.children()) {
      children.push_back(bind(*child, slots, next));
    }
    switch (tmpl.kind()) {
      case FilterKind::And:
        return Filter::make_and(std::move(children));
      case FilterKind::Or:
        return Filter::make_or(std::move(children));
      default:
        return Filter::make_not(std::move(children.front()));
    }
  }
  auto take = [&](const std::string& component) -> std::string {
    if (!is_placeholder(component)) return component;
    if (next >= slots.size()) {
      throw ProtocolError("template instantiation: not enough slot bindings");
    }
    return slots[next++];
  };
  switch (tmpl.kind()) {
    case FilterKind::Present:
      return Filter::present(tmpl.attribute());
    case FilterKind::Equality:
      return Filter::equality(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::GreaterEq:
      return Filter::greater_eq(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::LessEq:
      return Filter::less_eq(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::Substring: {
      SubstringPattern pat;
      pat.initial = tmpl.substrings().initial.empty()
                        ? ""
                        : take(tmpl.substrings().initial);
      for (const std::string& part : tmpl.substrings().any) {
        pat.any.push_back(take(part));
      }
      pat.final =
          tmpl.substrings().final.empty() ? "" : take(tmpl.substrings().final);
      return Filter::substring(tmpl.attribute(), std::move(pat));
    }
    default:
      throw ProtocolError("template instantiation: unexpected node kind");
  }
}

/// Generalizes a concrete filter into a fully wildcarded skeleton.
FilterPtr generalize_node(const Filter& f) {
  if (f.is_composite()) {
    std::vector<FilterPtr> children;
    children.reserve(f.children().size());
    for (const FilterPtr& child : f.children()) {
      children.push_back(generalize_node(*child));
    }
    switch (f.kind()) {
      case FilterKind::And:
        return Filter::make_and(std::move(children));
      case FilterKind::Or:
        return Filter::make_or(std::move(children));
      default:
        return Filter::make_not(std::move(children.front()));
    }
  }
  switch (f.kind()) {
    case FilterKind::Present:
      return Filter::present(f.attribute());
    case FilterKind::Equality:
      return Filter::equality(f.attribute(), kPlaceholder);
    case FilterKind::GreaterEq:
      return Filter::greater_eq(f.attribute(), kPlaceholder);
    case FilterKind::LessEq:
      return Filter::less_eq(f.attribute(), kPlaceholder);
    case FilterKind::Substring: {
      SubstringPattern pat;
      if (!f.substrings().initial.empty()) pat.initial = kPlaceholder;
      for (std::size_t i = 0; i < f.substrings().any.size(); ++i) {
        pat.any.emplace_back(kPlaceholder);
      }
      if (!f.substrings().final.empty()) pat.final = kPlaceholder;
      return Filter::substring(f.attribute(), std::move(pat));
    }
    default:
      throw ProtocolError("generalize: unexpected node kind");
  }
}

}  // namespace

FilterTemplate FilterTemplate::parse(std::string_view textual) {
  return from_skeleton(parse_filter(textual));
}

FilterTemplate FilterTemplate::from_skeleton(FilterPtr skeleton) {
  if (!skeleton) throw ProtocolError("null template skeleton");
  FilterTemplate tmpl;
  tmpl.skeleton_ = std::move(skeleton);
  tmpl.key_ = tmpl.skeleton_->to_string();
  tmpl.slot_count_ = count_slots(*tmpl.skeleton_);
  return tmpl;
}

FilterTemplate FilterTemplate::generalize(const Filter& filter) {
  return from_skeleton(generalize_node(filter));
}

std::optional<std::vector<std::string>> FilterTemplate::match(
    const Filter& filter, const Schema& schema) const {
  std::vector<std::string> slots;
  slots.reserve(slot_count_);
  if (!unify(*skeleton_, filter, schema, slots)) return std::nullopt;
  return slots;
}

FilterPtr FilterTemplate::instantiate(const std::vector<std::string>& slots) const {
  if (slots.size() != slot_count_) {
    throw ProtocolError("template '" + key_ + "' expects " +
                        std::to_string(slot_count_) + " bindings, got " +
                        std::to_string(slots.size()));
  }
  std::size_t next = 0;
  return bind(*skeleton_, slots, next);
}

std::size_t TemplateRegistry::add(FilterTemplate tmpl) {
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].key() == tmpl.key()) return i;
  }
  templates_.push_back(std::move(tmpl));
  return templates_.size() - 1;
}

std::size_t TemplateRegistry::add(std::string_view template_text) {
  return add(FilterTemplate::parse(template_text));
}

std::optional<BoundTemplate> TemplateRegistry::match(const Filter& filter,
                                                     const Schema& schema) const {
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (auto slots = templates_[i].match(filter, schema)) {
      return BoundTemplate{i, templates_[i].key(), std::move(*slots)};
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> TemplateRegistry::find(std::string_view key) const {
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].key() == key) return i;
  }
  return std::nullopt;
}

}  // namespace fbdr::ldap
