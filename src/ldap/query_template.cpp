#include "ldap/query_template.h"

#include <utility>

#include "ldap/error.h"
#include "ldap/filter_parser.h"

namespace fbdr::ldap {

namespace {

bool is_placeholder(std::string_view value) { return value == kPlaceholder; }

/// Collects the attribute of each `_` placeholder in a skeleton, pre-order
/// (the slot numbering FilterTemplate::match produces bindings in).
std::vector<std::string> collect_slot_attrs(const Filter& skeleton) {
  std::vector<std::string> attrs;
  skeleton.for_each_predicate([&](const Filter& p) {
    switch (p.kind()) {
      case FilterKind::Equality:
      case FilterKind::GreaterEq:
      case FilterKind::LessEq:
        if (is_placeholder(p.value())) attrs.push_back(p.attribute());
        break;
      case FilterKind::Substring: {
        const SubstringPattern& pat = p.substrings();
        if (is_placeholder(pat.initial)) attrs.push_back(p.attribute());
        for (const std::string& part : pat.any) {
          if (is_placeholder(part)) attrs.push_back(p.attribute());
        }
        if (is_placeholder(pat.final)) attrs.push_back(p.attribute());
        break;
      }
      default:
        break;
    }
  });
  return attrs;
}

void append_shape(const Filter& f, std::string& out) {
  switch (f.kind()) {
    case FilterKind::And:
    case FilterKind::Or: {
      out += f.kind() == FilterKind::And ? "(&" : "(|";
      for (const FilterPtr& child : f.children()) append_shape(*child, out);
      out += ')';
      return;
    }
    case FilterKind::Not:
      out += "(!";
      append_shape(*f.children().front(), out);
      out += ')';
      return;
    case FilterKind::Equality:
      out += "(" + f.attribute() + "=_)";
      return;
    case FilterKind::GreaterEq:
      out += "(" + f.attribute() + ">=_)";
      return;
    case FilterKind::LessEq:
      out += "(" + f.attribute() + "<=_)";
      return;
    case FilterKind::Present:
      out += "(" + f.attribute() + "=*)";
      return;
    case FilterKind::Substring: {
      // Component *presence* is part of the shape (unify requires the
      // template and filter to agree on it); component text is not.
      const SubstringPattern& pat = f.substrings();
      out += "(" + f.attribute() + "=";
      if (!pat.initial.empty()) out += '_';
      out += '*';
      for (std::size_t i = 0; i < pat.any.size(); ++i) out += "_*";
      if (!pat.final.empty()) out += '_';
      out += ')';
      return;
    }
  }
}

/// Recursive structural unification of a concrete filter against a skeleton.
bool unify(const Filter& tmpl, const Filter& f, const Schema& schema,
           std::vector<std::string>& slots) {
  if (tmpl.kind() != f.kind()) return false;
  if (tmpl.is_composite()) {
    if (tmpl.children().size() != f.children().size()) return false;
    for (std::size_t i = 0; i < tmpl.children().size(); ++i) {
      if (!unify(*tmpl.children()[i], *f.children()[i], schema, slots)) return false;
    }
    return true;
  }
  if (tmpl.attribute() != f.attribute()) return false;
  switch (tmpl.kind()) {
    case FilterKind::Present:
      return true;
    case FilterKind::Equality:
    case FilterKind::GreaterEq:
    case FilterKind::LessEq:
      if (is_placeholder(tmpl.value())) {
        slots.push_back(f.value());
        return true;
      }
      return schema.equals(tmpl.attribute(), tmpl.value(), f.value());
    case FilterKind::Substring: {
      const SubstringPattern& tp = tmpl.substrings();
      const SubstringPattern& fp = f.substrings();
      if (tp.any.size() != fp.any.size()) return false;
      // Components must agree in presence: a template with a non-empty
      // initial only matches filters with a non-empty initial, etc.
      if (tp.initial.empty() != fp.initial.empty()) return false;
      if (tp.final.empty() != fp.final.empty()) return false;
      auto component = [&](const std::string& t, const std::string& v) {
        if (t.empty()) return true;
        if (is_placeholder(t)) {
          slots.push_back(v);
          return true;
        }
        return schema.normalize(tmpl.attribute(), t) ==
               schema.normalize(tmpl.attribute(), v);
      };
      if (!component(tp.initial, fp.initial)) return false;
      for (std::size_t i = 0; i < tp.any.size(); ++i) {
        if (!component(tp.any[i], fp.any[i])) return false;
      }
      return component(tp.final, fp.final);
    }
    default:
      return false;
  }
}

/// Rebuilds a skeleton with placeholders bound from `slots` (consumed in
/// pre-order). Placeholder occurrences beyond the binding count throw.
FilterPtr bind(const Filter& tmpl, const std::vector<std::string>& slots,
               std::size_t& next) {
  if (tmpl.is_composite()) {
    std::vector<FilterPtr> children;
    children.reserve(tmpl.children().size());
    for (const FilterPtr& child : tmpl.children()) {
      children.push_back(bind(*child, slots, next));
    }
    switch (tmpl.kind()) {
      case FilterKind::And:
        return Filter::make_and(std::move(children));
      case FilterKind::Or:
        return Filter::make_or(std::move(children));
      default:
        return Filter::make_not(std::move(children.front()));
    }
  }
  auto take = [&](const std::string& component) -> std::string {
    if (!is_placeholder(component)) return component;
    if (next >= slots.size()) {
      throw ProtocolError("template instantiation: not enough slot bindings");
    }
    return slots[next++];
  };
  switch (tmpl.kind()) {
    case FilterKind::Present:
      return Filter::present(tmpl.attribute());
    case FilterKind::Equality:
      return Filter::equality(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::GreaterEq:
      return Filter::greater_eq(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::LessEq:
      return Filter::less_eq(tmpl.attribute(), take(tmpl.value()));
    case FilterKind::Substring: {
      SubstringPattern pat;
      pat.initial = tmpl.substrings().initial.empty()
                        ? ""
                        : take(tmpl.substrings().initial);
      for (const std::string& part : tmpl.substrings().any) {
        pat.any.push_back(take(part));
      }
      pat.final =
          tmpl.substrings().final.empty() ? "" : take(tmpl.substrings().final);
      return Filter::substring(tmpl.attribute(), std::move(pat));
    }
    default:
      throw ProtocolError("template instantiation: unexpected node kind");
  }
}

/// Generalizes a concrete filter into a fully wildcarded skeleton.
FilterPtr generalize_node(const Filter& f) {
  if (f.is_composite()) {
    std::vector<FilterPtr> children;
    children.reserve(f.children().size());
    for (const FilterPtr& child : f.children()) {
      children.push_back(generalize_node(*child));
    }
    switch (f.kind()) {
      case FilterKind::And:
        return Filter::make_and(std::move(children));
      case FilterKind::Or:
        return Filter::make_or(std::move(children));
      default:
        return Filter::make_not(std::move(children.front()));
    }
  }
  switch (f.kind()) {
    case FilterKind::Present:
      return Filter::present(f.attribute());
    case FilterKind::Equality:
      return Filter::equality(f.attribute(), kPlaceholder);
    case FilterKind::GreaterEq:
      return Filter::greater_eq(f.attribute(), kPlaceholder);
    case FilterKind::LessEq:
      return Filter::less_eq(f.attribute(), kPlaceholder);
    case FilterKind::Substring: {
      SubstringPattern pat;
      if (!f.substrings().initial.empty()) pat.initial = kPlaceholder;
      for (std::size_t i = 0; i < f.substrings().any.size(); ++i) {
        pat.any.emplace_back(kPlaceholder);
      }
      if (!f.substrings().final.empty()) pat.final = kPlaceholder;
      return Filter::substring(f.attribute(), std::move(pat));
    }
    default:
      throw ProtocolError("generalize: unexpected node kind");
  }
}

}  // namespace

FilterTemplate FilterTemplate::parse(std::string_view textual) {
  return from_skeleton(parse_filter(textual));
}

FilterTemplate FilterTemplate::from_skeleton(FilterPtr skeleton) {
  if (!skeleton) throw ProtocolError("null template skeleton");
  FilterTemplate tmpl;
  tmpl.skeleton_ = std::move(skeleton);
  tmpl.key_ = tmpl.skeleton_->to_string();
  tmpl.shape_ = filter_shape_key(*tmpl.skeleton_);
  tmpl.slot_attrs_ = collect_slot_attrs(*tmpl.skeleton_);
  tmpl.slot_count_ = tmpl.slot_attrs_.size();
  return tmpl;
}

FilterTemplate FilterTemplate::generalize(const Filter& filter) {
  return from_skeleton(generalize_node(filter));
}

std::optional<std::vector<std::string>> FilterTemplate::match(
    const Filter& filter, const Schema& schema) const {
  std::vector<std::string> slots;
  slots.reserve(slot_count_);
  if (!unify(*skeleton_, filter, schema, slots)) return std::nullopt;
  return slots;
}

FilterPtr FilterTemplate::instantiate(const std::vector<std::string>& slots) const {
  if (slots.size() != slot_count_) {
    throw ProtocolError("template '" + key_ + "' expects " +
                        std::to_string(slot_count_) + " bindings, got " +
                        std::to_string(slots.size()));
  }
  std::size_t next = 0;
  return bind(*skeleton_, slots, next);
}

std::string filter_shape_key(const Filter& filter) {
  std::string out;
  append_shape(filter, out);
  return out;
}

std::size_t TemplateRegistry::add(FilterTemplate tmpl) {
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].key() == tmpl.key()) return i;
  }
  templates_.push_back(std::move(tmpl));
  const std::size_t id = templates_.size() - 1;
  by_shape_[templates_[id].shape()].push_back(id);
  return id;
}

std::size_t TemplateRegistry::add(std::string_view template_text) {
  return add(FilterTemplate::parse(template_text));
}

std::optional<BoundTemplate> TemplateRegistry::match(const Filter& filter,
                                                     const Schema& schema) const {
  const auto bucket = by_shape_.find(filter_shape_key(filter));
  if (bucket == by_shape_.end()) return std::nullopt;
  for (const std::size_t i : bucket->second) {
    auto slots = templates_[i].match(filter, schema);
    if (!slots) continue;
    BoundTemplate bound{i, templates_[i].key(), std::move(*slots), {}};
    const std::vector<std::string>& attrs = templates_[i].slot_attrs();
    bound.norm_slots.reserve(bound.slots.size());
    for (std::size_t s = 0; s < bound.slots.size(); ++s) {
      bound.norm_slots.push_back(schema.normalize(attrs[s], bound.slots[s]));
    }
    return bound;
  }
  return std::nullopt;
}

std::optional<std::size_t> TemplateRegistry::find(std::string_view key) const {
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i].key() == key) return i;
  }
  return std::nullopt;
}

}  // namespace fbdr::ldap
