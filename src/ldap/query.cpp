#include "ldap/query.h"

#include <algorithm>

#include "ldap/error.h"
#include "ldap/filter_ir.h"
#include "ldap/filter_parser.h"
#include "ldap/text.h"

namespace fbdr::ldap {

std::string to_string(Scope scope) {
  switch (scope) {
    case Scope::Base:
      return "base";
    case Scope::OneLevel:
      return "one";
    case Scope::Subtree:
      return "sub";
  }
  return "unknown";
}

Scope scope_from_string(std::string_view s) {
  if (text::iequals(s, "base")) return Scope::Base;
  if (text::iequals(s, "one") || text::iequals(s, "onelevel")) return Scope::OneLevel;
  if (text::iequals(s, "sub") || text::iequals(s, "subtree")) return Scope::Subtree;
  throw ParseError("unknown scope '" + std::string(s) + "'");
}

AttributeSelection AttributeSelection::of(std::vector<std::string> names) {
  AttributeSelection sel;
  sel.all = false;
  sel.names.reserve(names.size());
  for (std::string& name : names) sel.names.push_back(text::lower(name));
  std::sort(sel.names.begin(), sel.names.end());
  sel.names.erase(std::unique(sel.names.begin(), sel.names.end()), sel.names.end());
  return sel;
}

bool AttributeSelection::subset_of(const AttributeSelection& other) const {
  if (other.all) return true;
  if (all) return false;
  return std::includes(other.names.begin(), other.names.end(), names.begin(),
                       names.end());
}

std::string AttributeSelection::to_string() const {
  if (all) return "*";
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

Query Query::parse(std::string_view base, Scope scope, std::string_view filter) {
  return Query(Dn::parse(base), scope, parse_filter(filter));
}

Query Query::whole_subtree(Dn base) {
  return Query(std::move(base), Scope::Subtree, Filter::match_all());
}

bool Query::region_covers(const Dn& dn) const {
  switch (scope) {
    case Scope::Base:
      return dn == base;
    case Scope::OneLevel:
      return base.is_parent_of(dn);
    case Scope::Subtree:
      return base.is_ancestor_or_self(dn);
  }
  return false;
}

std::string Query::to_string() const {
  return "base='" + base.to_string() + "' scope=" + ldap::to_string(scope) +
         " filter=" + (filter ? filter->to_string() : "(null)") +
         " attrs=" + attrs.to_string();
}

std::string Query::key() const {
  // The filter component is the canonical IR key, so spellings that differ
  // only in AND/OR child order, duplicate children, nesting or value case
  // produce the same key and dedup to one stored query.
  const FilterIrPtr ir =
      FilterInterner::for_schema(Schema::default_instance()).intern(filter);
  return base.norm_key() + "|" + std::to_string(static_cast<int>(scope)) + "|" +
         (ir ? ir->key() : "") + "|" + attrs.to_string();
}

bool operator==(const Query& a, const Query& b) {
  return a.base == b.base && a.scope == b.scope && a.attrs == b.attrs &&
         ((a.filter == nullptr && b.filter == nullptr) ||
          (a.filter && b.filter && filters_equal(*a.filter, *b.filter)));
}

}  // namespace fbdr::ldap
