#include "ldap/dn.h"

#include <algorithm>
#include <utility>

#include "ldap/error.h"
#include "ldap/text.h"

namespace fbdr::ldap {

namespace {

/// Splits a DN string into raw RDN strings (leaf-first), honouring backslash
/// escapes of the separator characters.
std::vector<std::string> split_components(std::string_view s) {
  std::vector<std::string> parts;
  std::string current;
  bool escaped = false;
  for (char c : s) {
    if (escaped) {
      current.push_back(c);
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == ',') {
      parts.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (escaped) throw ParseError("DN ends with dangling escape: " + std::string(s));
  parts.push_back(current);
  return parts;
}

Rdn parse_rdn(std::string_view raw, std::string_view whole) {
  const std::string_view trimmed = text::trim(raw);
  const std::size_t eq = trimmed.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw ParseError("malformed RDN '" + std::string(raw) + "' in DN '" +
                     std::string(whole) + "'");
  }
  const std::string_view type = text::trim(trimmed.substr(0, eq));
  const std::string_view value = text::trim(trimmed.substr(eq + 1));
  if (type.empty() || value.empty()) {
    throw ParseError("empty type or value in RDN '" + std::string(raw) +
                     "' of DN '" + std::string(whole) + "'");
  }
  return Rdn(type, value);
}

}  // namespace

Rdn::Rdn(std::string_view type, std::string_view value)
    : type_(text::lower(text::trim(type))),
      value_(text::trim(value)),
      norm_value_(text::lower(text::trim(value))) {
  if (type_.empty()) throw ParseError("RDN with empty attribute type");
  if (value_.empty()) throw ParseError("RDN with empty value");
}

namespace {

/// Escapes the RDN separator characters so to_string round-trips through
/// parse (RFC 2253 quoting subset).
std::string escape_rdn_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == ',' || c == '+' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Rdn::to_string() const {
  return type_ + "=" + escape_rdn_value(value_);
}

Dn Dn::parse(std::string_view raw) {
  const std::string_view s = text::trim(raw);
  if (s.empty()) return Dn{};
  std::vector<Rdn> rdns;
  const std::vector<std::string> parts = split_components(s);
  rdns.reserve(parts.size());
  // String form is leaf-first; store root-to-leaf.
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    rdns.push_back(parse_rdn(*it, s));
  }
  return from_rdns(std::move(rdns));
}

Dn Dn::from_rdns(std::vector<Rdn> root_to_leaf) {
  Dn dn;
  dn.rdns_ = std::move(root_to_leaf);
  dn.rebuild_strings();
  return dn;
}

const Rdn& Dn::leaf_rdn() const {
  if (is_root()) throw OperationError(ResultCode::InvalidDnSyntax, "root DN has no RDN");
  return rdns_.back();
}

Dn Dn::parent() const {
  if (is_root()) {
    throw OperationError(ResultCode::InvalidDnSyntax, "root DN has no parent");
  }
  std::vector<Rdn> rdns(rdns_.begin(), rdns_.end() - 1);
  return from_rdns(std::move(rdns));
}

Dn Dn::child(Rdn rdn) const {
  std::vector<Rdn> rdns = rdns_;
  rdns.push_back(std::move(rdn));
  return from_rdns(std::move(rdns));
}

bool Dn::is_ancestor_of(const Dn& other) const {
  if (depth() >= other.depth()) return false;
  return std::equal(rdns_.begin(), rdns_.end(), other.rdns_.begin());
}

bool Dn::is_ancestor_or_self(const Dn& other) const {
  return *this == other || is_ancestor_of(other);
}

bool Dn::is_parent_of(const Dn& other) const {
  return depth() + 1 == other.depth() && is_ancestor_of(other);
}

Dn Dn::rebase(const Dn& old_base, const Dn& new_base) const {
  if (!old_base.is_ancestor_or_self(*this)) {
    throw OperationError(ResultCode::NamingViolation,
                         "rebase: '" + old_base.to_string() +
                             "' is not an ancestor of '" + to_string() + "'");
  }
  std::vector<Rdn> rdns = new_base.rdns_;
  rdns.insert(rdns.end(), rdns_.begin() + static_cast<std::ptrdiff_t>(old_base.depth()),
              rdns_.end());
  return from_rdns(std::move(rdns));
}

void Dn::rebuild_strings() {
  text_.clear();
  key_.clear();
  // Leaf-first display/normalized form.
  for (auto it = rdns_.rbegin(); it != rdns_.rend(); ++it) {
    if (!text_.empty()) {
      text_ += ',';
      key_ += ',';
    }
    text_ += it->to_string();
    key_ += it->type() + "=" + escape_rdn_value(it->norm_value());
  }
}

}  // namespace fbdr::ldap
