#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fbdr::ldap {

/// Node kinds of the LDAP search-filter AST (RFC 2254 subset used by the
/// paper: AND, OR, NOT composites; equality, >=, <=, presence and substring
/// predicates).
enum class FilterKind {
  And,
  Or,
  Not,
  Equality,   // (attr=value)
  GreaterEq,  // (attr>=value)
  LessEq,     // (attr<=value)
  Present,    // (attr=*)
  Substring,  // (attr=initial*any*final)
};

std::string to_string(FilterKind kind);

/// A substring assertion: initial*any1*any2*...*final, where any component
/// may be absent. `(sn=smi*)` has initial "smi" and nothing else.
struct SubstringPattern {
  std::string initial;
  std::vector<std::string> any;
  std::string final;

  /// True when `value` matches the pattern. Matching is done on
  /// schema-normalized text by callers, so this is a plain byte match.
  bool matches(std::string_view value) const;

  /// True when the pattern is a pure prefix pattern ("abc*").
  bool is_prefix_only() const { return any.empty() && final.empty(); }

  /// RFC 2254 fragment, e.g. "smi*th*".
  std::string to_string() const;

  friend bool operator==(const SubstringPattern&, const SubstringPattern&) = default;
};

class Filter;
using FilterPtr = std::shared_ptr<const Filter>;

/// Immutable LDAP filter node. Composite nodes own their children; predicate
/// nodes carry an attribute name (lowercased) and an assertion value or
/// substring pattern. Build via the factory functions or parse_filter().
class Filter {
 public:
  FilterKind kind() const noexcept { return kind_; }

  // Composite access. Empty for predicate nodes.
  const std::vector<FilterPtr>& children() const noexcept { return children_; }

  // Predicate access. Empty for composite nodes.
  const std::string& attribute() const noexcept { return attribute_; }
  const std::string& value() const noexcept { return value_; }
  const SubstringPattern& substrings() const noexcept { return substrings_; }

  bool is_composite() const noexcept {
    return kind_ == FilterKind::And || kind_ == FilterKind::Or ||
           kind_ == FilterKind::Not;
  }
  bool is_predicate() const noexcept { return !is_composite(); }

  /// True when the filter contains no NOT operator (the paper's "positive
  /// filters", the class its containment propositions address).
  bool is_positive() const;

  /// Number of predicate leaves.
  std::size_t predicate_count() const;

  /// Visits every predicate leaf in pre-order.
  void for_each_predicate(const std::function<void(const Filter&)>& fn) const;

  /// RFC 2254 string form, e.g. "(&(sn=Doe)(givenName=John))".
  std::string to_string() const;

  // --- factories ---
  static FilterPtr make_and(std::vector<FilterPtr> children);
  static FilterPtr make_or(std::vector<FilterPtr> children);
  static FilterPtr make_not(FilterPtr child);
  static FilterPtr equality(std::string_view attr, std::string_view value);
  static FilterPtr greater_eq(std::string_view attr, std::string_view value);
  static FilterPtr less_eq(std::string_view attr, std::string_view value);
  static FilterPtr present(std::string_view attr);
  static FilterPtr substring(std::string_view attr, SubstringPattern pattern);

  /// The filter matching every entry: (objectclass=*).
  static FilterPtr match_all();

 private:
  Filter() = default;

  FilterKind kind_ = FilterKind::Present;
  std::vector<FilterPtr> children_;
  std::string attribute_;
  std::string value_;
  SubstringPattern substrings_;
};

/// Structural equality of two filters (same shape, attributes and values,
/// byte-compared). Semantic equivalence is the containment engine's job.
bool filters_equal(const Filter& a, const Filter& b);

}  // namespace fbdr::ldap
