#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ldap/filter.h"
#include "ldap/schema.h"

namespace fbdr::ldap {

/// LDAP templates (paper §3.4.2): filter prototypes in which assertion
/// values are replaced by the `_` placeholder, e.g. `(&(cn=_)(ou=research))`,
/// `(uid=_)`, `(sn=_*)`. A template may mix placeholders and constants.
///
/// A template is represented as an ordinary Filter whose assertion values (or
/// substring components) may be the literal `_`. Placeholders are numbered in
/// pre-order; within a substring predicate the order is initial, any...,
/// final.
class FilterTemplate {
 public:
  /// Builds a template from its string form, e.g. "(&(cn=_)(ou=research))".
  static FilterTemplate parse(std::string_view text);

  /// Builds a template from a filter skeleton (values may contain `_`).
  static FilterTemplate from_skeleton(FilterPtr skeleton);

  /// Fully generalizes a concrete filter: every assertion value and every
  /// substring component becomes `_`. The inverse of binding.
  static FilterTemplate generalize(const Filter& filter);

  const FilterPtr& skeleton() const noexcept { return skeleton_; }

  /// Canonical key, the skeleton's RFC 2254 string (lowercased attributes).
  const std::string& key() const noexcept { return key_; }

  /// The skeleton's shape key (every assertion value wildcarded, see
  /// filter_shape_key). Two filters can only unify when their shapes are
  /// byte-equal, which is what lets TemplateRegistry bucket templates.
  const std::string& shape() const noexcept { return shape_; }

  /// Number of `_` placeholders.
  std::size_t slot_count() const noexcept { return slot_count_; }

  /// Attribute of each placeholder slot, in slot (pre-order) order. Slot
  /// values bound by match() normalize under these attributes.
  const std::vector<std::string>& slot_attrs() const noexcept {
    return slot_attrs_;
  }

  /// Attempts to match `filter` against this template. On success returns the
  /// placeholder bindings in slot order; constants must match under the
  /// schema's matching rules. Returns nullopt when structure, attributes or
  /// constants differ.
  std::optional<std::vector<std::string>> match(
      const Filter& filter, const Schema& schema = Schema::default_instance()) const;

  /// Instantiates the template with the given slot bindings (inverse of
  /// match). Throws ProtocolError when the binding count is wrong.
  FilterPtr instantiate(const std::vector<std::string>& slots) const;

  friend bool operator==(const FilterTemplate& a, const FilterTemplate& b) {
    return a.key_ == b.key_;
  }

 private:
  FilterTemplate() = default;

  FilterPtr skeleton_;
  std::string key_;
  std::string shape_;
  std::size_t slot_count_ = 0;
  std::vector<std::string> slot_attrs_;
};

/// Structural shape of a filter: its RFC 2254 print with every assertion
/// value (and every non-empty substring component) replaced by `_`,
/// preserving child order and substring component presence. Template
/// unification is order-sensitive, so a successful FilterTemplate::match
/// implies shape(filter) == shape(skeleton); the registry uses this as an
/// exact prefilter index.
std::string filter_shape_key(const Filter& filter);

/// The placeholder marker used in templates.
inline constexpr std::string_view kPlaceholder = "_";

/// A filter matched against a registry: which template and which bindings.
/// `norm_slots` carries the slot values normalized under each slot's
/// attribute, so containment conditions compare them without re-normalizing.
struct BoundTemplate {
  std::size_t template_id = 0;
  std::string template_key;
  std::vector<std::string> slots;
  std::vector<std::string> norm_slots;
};

/// A set of admissible templates. The paper's replicas answer and replicate
/// only queries belonging to a configured template set ("in template based
/// containment, queries belonging to only a specified set of templates are
/// replicated and answered", §3.4.2).
class TemplateRegistry {
 public:
  /// Registers a template; returns its id. Re-registering the same key
  /// returns the existing id.
  std::size_t add(FilterTemplate tmpl);
  std::size_t add(std::string_view template_text);

  std::size_t size() const noexcept { return templates_.size(); }
  const FilterTemplate& at(std::size_t id) const { return templates_.at(id); }

  /// Finds the first registered template matching `filter`. Only templates
  /// whose shape key equals the filter's are tried (an exact prefilter —
  /// unification success implies shape equality), in registration order
  /// within the shape bucket, so register more specific templates (with
  /// constants) before fully wildcarded ones.
  std::optional<BoundTemplate> match(
      const Filter& filter, const Schema& schema = Schema::default_instance()) const;

  /// Id of a template by key, if registered.
  std::optional<std::size_t> find(std::string_view key) const;

 private:
  std::vector<FilterTemplate> templates_;
  /// shape key -> template ids with that shape, in registration order.
  std::unordered_map<std::string, std::vector<std::size_t>> by_shape_;
};

}  // namespace fbdr::ldap
