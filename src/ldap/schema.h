#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fbdr::ldap {

/// Attribute value syntax; determines the matching and ordering rules used
/// when evaluating filters and deciding filter containment.
enum class Syntax {
  CaseIgnoreString,  // caseIgnoreMatch / caseIgnoreOrderingMatch
  CaseExactString,   // caseExactMatch
  Integer,           // integerMatch / integerOrderingMatch
  DnString,          // distinguishedNameMatch (compared as normalized DNs)
};

std::string to_string(Syntax syntax);

/// Schema description of one attribute type.
struct AttributeType {
  std::string name;  // canonical (lowercase) name
  Syntax syntax = Syntax::CaseIgnoreString;
  bool single_valued = false;
  /// True when every entry carries this attribute (objectclass). Containment
  /// reasoning uses this: a branch requiring a required attribute to be
  /// absent is inconsistent, which is what makes (objectclass=*) the
  /// match-everything filter (§2.2).
  bool required = false;
};

/// A minimal attribute-type registry. Unknown attributes default to
/// case-ignore strings, which is what generic LDAP servers do when no
/// ordering rule is configured.
///
/// The default instance registers the attributes used by the paper's case
/// study (inetOrgPerson-style person entries, department/division entries and
/// location entries).
class Schema {
 public:
  Schema();

  /// The process-wide default schema (immutable after construction).
  static const Schema& default_instance();

  /// Registers (or replaces) an attribute type.
  void add(AttributeType type);

  /// Finds an attribute type by name (case-insensitive). Returns nullptr for
  /// unregistered attributes.
  const AttributeType* find(std::string_view name) const;

  /// Syntax for an attribute, defaulting to CaseIgnoreString when unknown.
  Syntax syntax_of(std::string_view attr) const;

  /// Normalizes an assertion/attribute value under the attribute's matching
  /// rule (lowercasing for case-ignore, canonical integer form for integers).
  std::string normalize(std::string_view attr, std::string_view value) const;

  /// Three-way comparison of two values under the attribute's ordering rule.
  /// Returns <0, 0 or >0. Integer syntax compares numerically; strings
  /// compare lexicographically after normalization.
  int compare(std::string_view attr, std::string_view a, std::string_view b) const;

  bool equals(std::string_view attr, std::string_view a, std::string_view b) const {
    return compare(attr, a, b) == 0;
  }

  /// Monotonically increasing stamp bumped by every add(). Two Schema
  /// objects never share a (address, revision) pair even across address
  /// reuse, so FilterInterner::for_schema can key its per-schema interners
  /// safely and drop cached normalizations when a schema mutates.
  std::uint64_t revision() const noexcept { return revision_; }

 private:
  std::unordered_map<std::string, AttributeType> types_;
  std::uint64_t revision_ = 0;
};

/// Canonical integer form: optional '-', no leading zeros ("007" -> "7",
/// "-0" -> "0"). Returns nullopt when the value is not a valid integer
/// literal; callers fall back to string comparison in that case.
std::optional<std::string> canonical_integer(std::string_view value);

/// Numeric comparison of two canonical integer strings.
int compare_canonical_integers(std::string_view a, std::string_view b);

/// True when `value` is already in canonical integer form (optional '-',
/// digits, no leading zeros). Schema::normalize emits exactly this form for
/// valid integer literals under Integer syntax, and never emits a pure digit
/// string for an invalid one, so this test recovers "was a valid integer"
/// from the normalized spelling alone.
bool is_canonical_integer(std::string_view value);

}  // namespace fbdr::ldap
