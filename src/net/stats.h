#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace fbdr::net {

/// Traffic accounting for the simulated client/server and master/replica
/// links. The paper's evaluation reports update traffic in *number of
/// entries* (Figs. 6-7) and protocol costs in round trips (§2.3); bytes are
/// tracked as well for finer-grained comparisons.
struct TrafficStats {
  std::uint64_t round_trips = 0;    // request/response exchanges
  std::uint64_t pdus = 0;           // protocol data units (entries, refs, DNs)
  std::uint64_t entries = 0;        // full entries transferred
  std::uint64_t dns_only = 0;       // delete/retain PDUs carrying only a DN
  std::uint64_t referrals = 0;      // referral PDUs
  /// Wire bytes. Direct links add approx_bytes() estimates via count_*;
  /// framed links add exact encoded frame sizes via count_frame.
  std::uint64_t bytes = 0;
  std::uint64_t frames = 0;         // encoded frames carried (framed links)

  void count_round_trip() { ++round_trips; }

  /// One encoded frame of `frame_bytes` bytes crossed the link (header
  /// included) — the exact accounting of framed transports.
  void count_frame(std::size_t frame_bytes) {
    ++frames;
    bytes += frame_bytes;
  }

  // PDU tallies without byte estimates, for framed links whose bytes are
  // already counted exactly at the frame level.
  void note_entry() {
    ++pdus;
    ++entries;
  }

  void note_dn() {
    ++pdus;
    ++dns_only;
  }

  void note_referral() {
    ++pdus;
    ++referrals;
  }

  void count_entry(std::size_t entry_bytes) {
    ++pdus;
    ++entries;
    bytes += entry_bytes;
  }

  void count_dn(std::size_t dn_bytes) {
    ++pdus;
    ++dns_only;
    bytes += dn_bytes;
  }

  void count_referral(std::size_t ref_bytes) {
    ++pdus;
    ++referrals;
    bytes += ref_bytes;
  }

  TrafficStats& operator+=(const TrafficStats& other) {
    round_trips += other.round_trips;
    pdus += other.pdus;
    entries += other.entries;
    dns_only += other.dns_only;
    referrals += other.referrals;
    bytes += other.bytes;
    frames += other.frames;
    return *this;
  }

  void reset() { *this = {}; }

  std::string to_string() const;
};

/// Health of one replicated filter's update session, as seen by the replica
/// site. A filter degrades when its session is down past the retry budget;
/// it keeps serving containment hits from (possibly stale) local content
/// until the full-reload recovery on reconnect heals it.
struct FilterHealth {
  bool degraded = false;
  std::uint64_t ticks_behind = 0;   // master clock now - last successful sync
  std::uint64_t retries = 0;        // transport retries spent on this filter
  std::uint64_t recoveries = 0;     // session recoveries (reload + reconcile)
  std::uint64_t failed_syncs = 0;   // sync rounds lost to transport faults
  std::uint64_t busy_rejections = 0;  // initial requests bounced at capacity
  std::uint64_t degraded_polls = 0;   // eq.(3) complete enumerations received
  std::uint64_t paged_polls = 0;      // continuation pages fetched
  std::uint64_t full_reloads = 0;     // recoveries that reshipped everything
  std::uint64_t reconciles = 0;       // recoveries healed by a digest walk
  std::uint64_t reconcile_entries_shipped = 0;  // diff PDUs those walks cost
};

/// Per-filter health of a replica site, the robustness counterpart of
/// TrafficStats: staleness and degradation instead of bytes and PDUs.
struct HealthStats {
  std::map<std::string, FilterHealth> filters;  // keyed by query key

  std::size_t degraded_count() const;
  bool any_degraded() const { return degraded_count() > 0; }
  std::uint64_t max_ticks_behind() const;
  std::uint64_t total_retries() const;
  std::uint64_t total_recoveries() const;
  std::uint64_t total_busy_rejections() const;
  std::uint64_t total_degraded_polls() const;
  std::uint64_t total_paged_polls() const;
  std::uint64_t total_full_reloads() const;
  std::uint64_t total_reconciles() const;
  std::uint64_t total_reconcile_entries_shipped() const;

  std::string to_string() const;
};

/// Deterministic logical clock used wherever the protocols need "time"
/// (session timeouts, update windows). One tick is one simulated event.
class LogicalClock {
 public:
  std::uint64_t now() const noexcept { return now_; }
  std::uint64_t tick() { return ++now_; }
  void advance(std::uint64_t delta) { now_ += delta; }

 private:
  std::uint64_t now_ = 0;
};

}  // namespace fbdr::net
