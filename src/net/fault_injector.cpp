#include "net/fault_injector.h"

#include <algorithm>

#include "ldap/error.h"
#include "resync/endpoint.h"

namespace fbdr::net {

FaultyChannel::FaultyChannel(resync::ReSyncEndpoint& endpoint, FaultConfig config)
    : endpoint_(&endpoint), config_(config), rng_(config.seed) {}

bool FaultyChannel::chance(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

void FaultyChannel::deliver_one_replay() {
  auto [query, control] = std::move(in_flight_.front());
  in_flight_.pop_front();
  ++counters_.replayed;
  try {
    // The response to a stray duplicate goes nowhere; the master's replay
    // cache (or its out-of-sequence rejection) keeps the session unharmed.
    endpoint_->handle(query, control);
  } catch (const ldap::ProtocolError&) {
  }
}

resync::ReSyncResponse FaultyChannel::exchange(const ldap::Query& query,
                                               const resync::ReSyncControl& control) {
  ++counters_.exchanges;
  ++local_now_;
  if (down_) {
    ++counters_.rejected_while_down;
    throw TransportError("master is down");
  }
  // Memory-pressure outage: inside a window the endpoint sheds every
  // exchange; a fresh draw may open a new window.
  if (local_now_ < outage_until_) {
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  if (chance(config_.outage)) {
    const std::uint64_t span =
        std::max<std::uint64_t>(config_.max_outage_ticks, 1);
    outage_until_ = local_now_ + 1 + rng_() % span;
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  // A duplicate from an earlier exchange may overtake this request.
  if (!in_flight_.empty() && chance(config_.reorder)) {
    deliver_one_replay();
  }
  if (chance(config_.delay)) {
    ++counters_.delayed;
    const std::uint64_t span = std::max<std::uint64_t>(config_.max_delay_ticks, 1);
    endpoint_->tick(1 + rng_() % span);
  }
  if (chance(config_.drop_request)) {
    ++counters_.dropped_requests;
    throw TransportError("request lost");
  }
  if (chance(config_.duplicate)) {
    ++counters_.duplicated;
    in_flight_.emplace_back(query, control);
  }
  resync::ReSyncResponse response = endpoint_->handle(query, control);
  if (chance(config_.reset)) {
    ++counters_.resets;
    throw TransportError("connection reset");
  }
  if (chance(config_.drop_response)) {
    ++counters_.dropped_responses;
    throw TransportError("response lost");
  }
  return response;
}

void FaultyChannel::abandon(const std::string& cookie) {
  if (down_) return;  // best effort: nothing to deliver to
  endpoint_->abandon(cookie);
}

void FaultyChannel::elapse(std::uint64_t ticks) {
  local_now_ += ticks;  // backing off can outlast an outage window
  endpoint_->tick(ticks);
}

void FaultyChannel::crash_master() {
  down_ = true;
  in_flight_.clear();  // requests addressed to the dead master are gone
  endpoint_->reset();
}

void FaultyChannel::restart_master() { down_ = false; }

void FaultyChannel::flush_replays() {
  while (!in_flight_.empty() && !down_) {
    deliver_one_replay();
  }
}

FaultyPipe::FaultyPipe(resync::ReSyncEndpoint& endpoint, FaultConfig config)
    : inner_(endpoint),
      endpoint_(&endpoint),
      config_(config),
      rng_(config.seed) {}

bool FaultyPipe::chance(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

void FaultyPipe::deliver_one_replay() {
  wire::Bytes frame = std::move(in_flight_.front());
  in_flight_.pop_front();
  ++counters_.replayed;
  try {
    // The response to a stray duplicate goes nowhere; the endpoint's replay
    // cache (or its out-of-sequence rejection, shipped back as an error
    // frame the void swallows) keeps the session unharmed.
    inner_.transfer(frame);
  } catch (const TransportError&) {
  }
}

wire::Bytes FaultyPipe::damage(wire::Bytes frame) {
  if (chance(config_.corrupt) && !frame.empty()) {
    ++counters_.corrupted;
    const std::size_t bit = rng_() % (frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  if (chance(config_.truncate) && !frame.empty()) {
    ++counters_.truncated;
    frame.resize(rng_() % frame.size());  // strictly shorter
  }
  return frame;
}

wire::Bytes FaultyPipe::transfer(const wire::Bytes& frame) {
  ++counters_.exchanges;
  ++local_now_;
  if (down_) {
    ++counters_.rejected_while_down;
    throw TransportError("master is down");
  }
  if (local_now_ < outage_until_) {
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  if (chance(config_.outage)) {
    const std::uint64_t span =
        std::max<std::uint64_t>(config_.max_outage_ticks, 1);
    outage_until_ = local_now_ + 1 + rng_() % span;
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  if (!in_flight_.empty() && chance(config_.reorder)) {
    deliver_one_replay();
  }
  if (chance(config_.delay)) {
    ++counters_.delayed;
    const std::uint64_t span = std::max<std::uint64_t>(config_.max_delay_ticks, 1);
    endpoint_->tick(1 + rng_() % span);
  }
  if (chance(config_.drop_request)) {
    ++counters_.dropped_requests;
    throw TransportError("request frame lost");
  }
  if (chance(config_.duplicate)) {
    ++counters_.duplicated;
    in_flight_.push_back(frame);  // the clean copy lives on in the network
  }
  // Byte damage en route to the endpoint: the codec's checksum/length
  // validation rejects it there, which reaches us as TransportError.
  wire::Bytes response = inner_.transfer(damage(frame));
  if (chance(config_.reset)) {
    ++counters_.resets;
    throw TransportError("connection reset");
  }
  if (chance(config_.drop_response)) {
    ++counters_.dropped_responses;
    throw TransportError("response frame lost");
  }
  // Byte damage on the way back: the client-side decode rejects it.
  return damage(std::move(response));
}

void FaultyPipe::send(const wire::Bytes& frame) {
  if (down_) return;  // best effort: nothing to deliver to
  inner_.send(frame);
}

void FaultyPipe::elapse(std::uint64_t ticks) {
  local_now_ += ticks;  // backing off can outlast an outage window
  inner_.elapse(ticks);
}

void FaultyPipe::crash_master() {
  down_ = true;
  in_flight_.clear();  // frames addressed to the dead master are gone
  endpoint_->reset();
}

void FaultyPipe::restart_master() { down_ = false; }

void FaultyPipe::flush_replays() {
  while (!in_flight_.empty() && !down_) {
    deliver_one_replay();
  }
}

}  // namespace fbdr::net
