#include "net/fault_injector.h"

#include <algorithm>

#include "ldap/error.h"
#include "resync/endpoint.h"

namespace fbdr::net {

FaultyChannel::FaultyChannel(resync::ReSyncEndpoint& endpoint, FaultConfig config)
    : endpoint_(&endpoint), config_(config), rng_(config.seed) {}

bool FaultyChannel::chance(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

void FaultyChannel::deliver_one_replay() {
  auto [query, control] = std::move(in_flight_.front());
  in_flight_.pop_front();
  ++counters_.replayed;
  try {
    // The response to a stray duplicate goes nowhere; the master's replay
    // cache (or its out-of-sequence rejection) keeps the session unharmed.
    endpoint_->handle(query, control);
  } catch (const ldap::ProtocolError&) {
  }
}

resync::ReSyncResponse FaultyChannel::exchange(const ldap::Query& query,
                                               const resync::ReSyncControl& control) {
  ++counters_.exchanges;
  ++local_now_;
  if (down_) {
    ++counters_.rejected_while_down;
    throw TransportError("master is down");
  }
  // Memory-pressure outage: inside a window the endpoint sheds every
  // exchange; a fresh draw may open a new window.
  if (local_now_ < outage_until_) {
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  if (chance(config_.outage)) {
    const std::uint64_t span =
        std::max<std::uint64_t>(config_.max_outage_ticks, 1);
    outage_until_ = local_now_ + 1 + rng_() % span;
    ++counters_.outages;
    throw TransportError("memory pressure: endpoint shedding load");
  }
  // A duplicate from an earlier exchange may overtake this request.
  if (!in_flight_.empty() && chance(config_.reorder)) {
    deliver_one_replay();
  }
  if (chance(config_.delay)) {
    ++counters_.delayed;
    const std::uint64_t span = std::max<std::uint64_t>(config_.max_delay_ticks, 1);
    endpoint_->tick(1 + rng_() % span);
  }
  if (chance(config_.drop_request)) {
    ++counters_.dropped_requests;
    throw TransportError("request lost");
  }
  if (chance(config_.duplicate)) {
    ++counters_.duplicated;
    in_flight_.emplace_back(query, control);
  }
  resync::ReSyncResponse response = endpoint_->handle(query, control);
  if (chance(config_.reset)) {
    ++counters_.resets;
    throw TransportError("connection reset");
  }
  if (chance(config_.drop_response)) {
    ++counters_.dropped_responses;
    throw TransportError("response lost");
  }
  return response;
}

void FaultyChannel::abandon(const std::string& cookie) {
  if (down_) return;  // best effort: nothing to deliver to
  endpoint_->abandon(cookie);
}

void FaultyChannel::elapse(std::uint64_t ticks) {
  local_now_ += ticks;  // backing off can outlast an outage window
  endpoint_->tick(ticks);
}

void FaultyChannel::crash_master() {
  down_ = true;
  in_flight_.clear();  // requests addressed to the dead master are gone
  endpoint_->reset();
}

void FaultyChannel::restart_master() { down_ = false; }

void FaultyChannel::flush_replays() {
  while (!in_flight_.empty() && !down_) {
    deliver_one_replay();
  }
}

}  // namespace fbdr::net
