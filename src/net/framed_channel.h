#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"
#include "net/stats.h"
#include "wire/codec.h"

namespace fbdr::resync {
class ReSyncEndpoint;
}

namespace fbdr::net {

/// The byte-level link under a FramedChannel: opaque frames in, opaque
/// frames out. This is the seam the later epoll/socket runtime will
/// implement; today's implementations terminate at an in-process endpoint
/// (EndpointPipe) or wrap one in a deterministic frame-level fault injector
/// (FaultyPipe). Pipes never interpret protocol semantics beyond decoding —
/// retry, replay and recovery all stay above the seam.
class BytePipe {
 public:
  virtual ~BytePipe() = default;

  /// Carries one request frame and returns the response frame. Throws
  /// TransportError when the frame (or its response) is lost, rejected or
  /// undecodable server-side.
  virtual wire::Bytes transfer(const wire::Bytes& frame) = 0;

  /// One-way frame (abandon); best effort, no response.
  virtual void send(const wire::Bytes& frame) = 0;

  /// Logical time passing on the link (client backoff).
  virtual void elapse(std::uint64_t ticks) = 0;
};

/// The server end of a framed link, terminating at an in-process
/// ReSyncEndpoint: deframe + decode the request (a garbled frame is dropped
/// by the server, surfacing client-side as TransportError), dispatch it,
/// and encode the answer. Protocol rejections (stale cookie, busy,
/// operation/protocol errors) cross back as typed error frames so the
/// client rethrows exactly what a direct link would have thrown.
class EndpointPipe final : public BytePipe {
 public:
  explicit EndpointPipe(resync::ReSyncEndpoint& endpoint)
      : endpoint_(&endpoint) {}

  wire::Bytes transfer(const wire::Bytes& frame) override;
  void send(const wire::Bytes& frame) override;
  void elapse(std::uint64_t ticks) override;

  resync::ReSyncEndpoint& endpoint() noexcept { return *endpoint_; }

 private:
  resync::ReSyncEndpoint* endpoint_;
};

/// Channel implementation that routes every exchange through the wire codec
/// and a BytePipe: the protocol structs exist only at the two ends, and
/// everything between them is bytes. Traffic accounting is exact — frame
/// sizes as encoded, not approx_bytes() estimates.
class FramedChannel final : public Channel {
 public:
  explicit FramedChannel(std::shared_ptr<BytePipe> pipe)
      : pipe_(std::move(pipe)) {}

  /// Convenience: a fault-free framed link straight to an endpoint (the
  /// framed counterpart of DirectChannel).
  explicit FramedChannel(resync::ReSyncEndpoint& endpoint)
      : pipe_(std::make_shared<EndpointPipe>(endpoint)) {}

  resync::ReSyncResponse exchange(const ldap::Query& query,
                                  const resync::ReSyncControl& control) override;
  void abandon(const std::string& cookie) override;
  void elapse(std::uint64_t ticks) override;

  /// Exact frame-level traffic: bytes are encoded frame sizes (headers
  /// included), pdus/entries/dns/referrals counted from decoded responses.
  const TrafficStats& traffic() const noexcept { return traffic_; }
  void reset_traffic() { traffic_.reset(); }

  BytePipe& pipe() noexcept { return *pipe_; }

 private:
  std::shared_ptr<BytePipe> pipe_;
  TrafficStats traffic_;
};

}  // namespace fbdr::net
