#include "net/fault_schedule.h"

#include <stdexcept>

namespace fbdr::net {

namespace {

FaultConfig quiet(std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  return config;
}

}  // namespace

const FaultPhase& FaultSchedule::phase_at(std::uint64_t round) const {
  if (phases.empty()) throw std::logic_error("empty fault schedule: " + name);
  std::uint64_t start = 0;
  for (const FaultPhase& phase : phases) {
    if (round < start + phase.rounds) return phase;
    start += phase.rounds;
  }
  return phases.back();
}

const FaultConfig& FaultSchedule::config_at(std::uint64_t round) const {
  return phase_at(round).config;
}

std::uint64_t FaultSchedule::total_rounds() const {
  std::uint64_t total = 0;
  for (const FaultPhase& phase : phases) total += phase.rounds;
  return total;
}

FaultSchedule partition_schedule(std::uint64_t seed) {
  FaultConfig partition = quiet(seed);
  partition.outage = 1.0;  // link-level: full partition window
  return {"partition",
          {{"warmup", quiet(seed), 4},
           {"partition", partition, 3},
           {"heal", quiet(seed), 6}}};
}

FaultSchedule reset_storm_schedule(std::uint64_t seed) {
  FaultConfig storm = quiet(seed);
  storm.reset = 0.45;
  storm.drop_request = 0.15;
  return {"reset_storm",
          {{"warmup", quiet(seed), 4},
           {"storm", storm, 6},
           {"heal", quiet(seed), 6}}};
}

FaultSchedule corruption_schedule(std::uint64_t seed) {
  FaultConfig garble = quiet(seed);
  garble.corrupt = 0.30;
  garble.truncate = 0.20;
  return {"corruption",
          {{"warmup", quiet(seed), 4},
           {"garble", garble, 6},
           {"heal", quiet(seed), 6}}};
}

FaultSchedule crash_storm_schedule(std::uint64_t seed) {
  return {"crash_storm",
          {{"warmup", quiet(seed), 4},
           {"storm", quiet(seed), 8},
           {"heal", quiet(seed), 8}}};
}

}  // namespace fbdr::net
