#pragma once

#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <utility>

#include "net/channel.h"
#include "net/framed_channel.h"

namespace fbdr::net {

/// Per-exchange fault probabilities of a FaultyChannel. All randomness is
/// drawn from one seeded generator, so a (seed, schedule) pair replays the
/// exact same fault sequence.
struct FaultConfig {
  std::uint64_t seed = 1;
  double drop_request = 0.0;   // lost before reaching the master
  double drop_response = 0.0;  // processed at the master, response lost
  double duplicate = 0.0;      // a copy stays in flight and arrives later
  double reorder = 0.0;        // chance an in-flight copy arrives before this
  double reset = 0.0;          // connection reset after processing
  double delay = 0.0;          // link delay (master clock advances)
  std::uint64_t max_delay_ticks = 4;
  /// Memory-pressure outage: with this probability an exchange opens an
  /// outage window of up to max_outage_ticks local ticks (elapse() and each
  /// exchange advance local time) during which every exchange fails with
  /// TransportError — the endpoint shedding load wholesale, as distinct from
  /// per-message loss. Models the overload regime the ResourceGovernor's
  /// budgets exist to survive.
  double outage = 0.0;
  std::uint64_t max_outage_ticks = 4;
  /// Byte-level faults, meaningful only on framed links (FaultyPipe): a
  /// random bit of the encoded frame is flipped / the frame is chopped at a
  /// random offset. The codec's frame checksum and length prefix turn both
  /// into CodecError → TransportError, so they heal through the same
  /// retry/replay machinery as a dropped message. Each probability is drawn
  /// independently for the request and the response frame.
  double corrupt = 0.0;
  double truncate = 0.0;
};

/// What the injector actually did — for asserting that a chaos schedule
/// exercised the paths it was meant to.
struct FaultCounters {
  std::uint64_t exchanges = 0;
  std::uint64_t dropped_requests = 0;
  std::uint64_t dropped_responses = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t replayed = 0;  // in-flight copies delivered to the master
  std::uint64_t delayed = 0;
  std::uint64_t resets = 0;
  std::uint64_t rejected_while_down = 0;
  std::uint64_t outages = 0;  // exchanges refused inside outage windows
  std::uint64_t corrupted = 0;  // frames with a flipped bit (framed links)
  std::uint64_t truncated = 0;  // frames chopped short (framed links)

  std::uint64_t faults() const {
    return dropped_requests + dropped_responses + duplicated + replayed +
           delayed + resets + rejected_while_down + outages + corrupted +
           truncated;
  }
};

/// A lossy, duplicating, reordering, delaying link to a ReSync endpoint
/// (the enterprise master or a relay), plus a crash/restart hook that wipes
/// the endpoint's session state to model the "master restarted" case of
/// §5.2. Deterministic under a fixed seed.
///
/// Duplication is modelled the way it bites an RPC protocol: the duplicated
/// request is queued and re-delivered to the endpoint *later* (possibly
/// after newer requests — reordering), where only the replay-safe cookie
/// sequence numbers prevent it from consuming session history twice.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(resync::ReSyncEndpoint& endpoint, FaultConfig config);

  resync::ReSyncResponse exchange(const ldap::Query& query,
                                  const resync::ReSyncControl& control) override;
  void abandon(const std::string& cookie) override;
  void elapse(std::uint64_t ticks) override;

  /// Endpoint crash: session state is wiped (ReSyncEndpoint::reset — on a
  /// relay this also bumps its cookie epoch), in-flight requests are lost,
  /// and every exchange fails with TransportError until restart_master().
  void crash_master();
  void restart_master();
  bool master_down() const noexcept { return down_; }

  /// Replaces the fault probabilities (e.g. zeroed for a quiescence phase);
  /// the random stream continues, so the schedule stays deterministic.
  void set_config(const FaultConfig& config) { config_ = config; }

  /// Delivers every still-queued duplicate to the master (responses
  /// discarded) — drains the link before checking convergence.
  void flush_replays();

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  bool chance(double probability);
  void deliver_one_replay();

  resync::ReSyncEndpoint* endpoint_;
  FaultConfig config_;
  std::mt19937_64 rng_;
  std::deque<std::pair<ldap::Query, resync::ReSyncControl>> in_flight_;
  FaultCounters counters_;
  bool down_ = false;
  std::uint64_t local_now_ = 0;     // elapse() + one per exchange
  std::uint64_t outage_until_ = 0;  // local tick the current outage ends
};

/// FaultyChannel's framed twin: the same deterministic drop/dup/reorder/
/// reset/delay/outage schedule, but operating on encoded frames flowing to
/// an EndpointPipe — plus the two faults that only exist once there are
/// bytes to damage: bit corruption and truncation. A damaged frame fails
/// the codec's checksum/length validation at the receiving end, surfacing
/// as CodecError → TransportError, and heals through the ordinary retry and
/// replay-cookie machinery.
///
/// Duplication stores the encoded request frame and re-delivers it later
/// (possibly reordered ahead of a newer request), byte-identically — the
/// framed analogue of a packet living on in the network.
class FaultyPipe final : public BytePipe {
 public:
  FaultyPipe(resync::ReSyncEndpoint& endpoint, FaultConfig config);

  wire::Bytes transfer(const wire::Bytes& frame) override;
  void send(const wire::Bytes& frame) override;
  void elapse(std::uint64_t ticks) override;

  /// Crash/restart hooks, mirroring FaultyChannel.
  void crash_master();
  void restart_master();
  bool master_down() const noexcept { return down_; }

  void set_config(const FaultConfig& config) { config_ = config; }
  void flush_replays();

  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  bool chance(double probability);
  void deliver_one_replay();
  /// Applies corrupt/truncate draws to a copy of `frame`; counts what it did.
  wire::Bytes damage(wire::Bytes frame);

  EndpointPipe inner_;
  resync::ReSyncEndpoint* endpoint_;
  FaultConfig config_;
  std::mt19937_64 rng_;
  std::deque<wire::Bytes> in_flight_;  // duplicated request frames
  FaultCounters counters_;
  bool down_ = false;
  std::uint64_t local_now_ = 0;
  std::uint64_t outage_until_ = 0;
};

}  // namespace fbdr::net
