#include "net/channel.h"

#include <algorithm>

#include "resync/endpoint.h"

namespace fbdr::net {

resync::ReSyncResponse DirectChannel::exchange(const ldap::Query& query,
                                               const resync::ReSyncControl& control) {
  return endpoint_->handle(query, control);
}

void DirectChannel::abandon(const std::string& cookie) {
  endpoint_->abandon(cookie);
}

void DirectChannel::elapse(std::uint64_t ticks) { endpoint_->tick(ticks); }

namespace {

/// splitmix64 finalizer — a cheap, well-mixed deterministic hash.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t RetryPolicy::backoff(std::size_t attempt) const {
  double ticks = static_cast<double>(base_backoff_ticks);
  for (std::size_t i = 0; i < attempt; ++i) ticks *= multiplier;
  const double capped = std::min(ticks, static_cast<double>(max_backoff_ticks));
  std::uint64_t wait = static_cast<std::uint64_t>(capped);
  if (jitter_seed != 0 && base_backoff_ticks > 0) {
    // Deterministic jitter in [0, base): same (seed, attempt) -> same wait.
    wait += mix(jitter_seed + 0x9e3779b97f4a7c15ull * (attempt + 1)) %
            base_backoff_ticks;
  }
  return std::max<std::uint64_t>(wait, 1);
}

resync::ReSyncResponse exchange_with_retry(Channel& channel,
                                           const ldap::Query& query,
                                           const resync::ReSyncControl& control,
                                           const RetryPolicy& policy,
                                           std::uint64_t* retries) {
  const std::size_t attempts = std::max<std::size_t>(policy.max_attempts, 1);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return channel.exchange(query, control);
    } catch (const TransportError&) {
      if (attempt + 1 >= attempts) throw;
      channel.elapse(policy.backoff(attempt));
      if (retries != nullptr) ++*retries;
    }
  }
}

}  // namespace fbdr::net
