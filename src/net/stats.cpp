#include "net/stats.h"

namespace fbdr::net {

std::string TrafficStats::to_string() const {
  return "round_trips=" + std::to_string(round_trips) +
         " pdus=" + std::to_string(pdus) + " entries=" + std::to_string(entries) +
         " dns_only=" + std::to_string(dns_only) +
         " referrals=" + std::to_string(referrals) +
         " bytes=" + std::to_string(bytes) +
         " frames=" + std::to_string(frames);
}

std::size_t HealthStats::degraded_count() const {
  std::size_t count = 0;
  for (const auto& [key, health] : filters) {
    if (health.degraded) ++count;
  }
  return count;
}

std::uint64_t HealthStats::max_ticks_behind() const {
  std::uint64_t max = 0;
  for (const auto& [key, health] : filters) {
    if (health.ticks_behind > max) max = health.ticks_behind;
  }
  return max;
}

std::uint64_t HealthStats::total_retries() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.retries;
  return total;
}

std::uint64_t HealthStats::total_recoveries() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.recoveries;
  return total;
}

std::uint64_t HealthStats::total_busy_rejections() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.busy_rejections;
  return total;
}

std::uint64_t HealthStats::total_degraded_polls() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.degraded_polls;
  return total;
}

std::uint64_t HealthStats::total_paged_polls() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.paged_polls;
  return total;
}

std::uint64_t HealthStats::total_full_reloads() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.full_reloads;
  return total;
}

std::uint64_t HealthStats::total_reconciles() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) total += health.reconciles;
  return total;
}

std::uint64_t HealthStats::total_reconcile_entries_shipped() const {
  std::uint64_t total = 0;
  for (const auto& [key, health] : filters) {
    total += health.reconcile_entries_shipped;
  }
  return total;
}

std::string HealthStats::to_string() const {
  std::string out = "filters=" + std::to_string(filters.size()) +
                    " degraded=" + std::to_string(degraded_count()) +
                    " max_ticks_behind=" + std::to_string(max_ticks_behind()) +
                    " retries=" + std::to_string(total_retries()) +
                    " recoveries=" + std::to_string(total_recoveries()) +
                    " busy=" + std::to_string(total_busy_rejections()) +
                    " degraded_polls=" + std::to_string(total_degraded_polls()) +
                    " paged_polls=" + std::to_string(total_paged_polls()) +
                    " full_reloads=" + std::to_string(total_full_reloads()) +
                    " reconciles=" + std::to_string(total_reconciles()) +
                    " reconcile_shipped=" +
                    std::to_string(total_reconcile_entries_shipped());
  for (const auto& [key, health] : filters) {
    if (!health.degraded) continue;
    out += "\n  degraded: " + key +
           " ticks_behind=" + std::to_string(health.ticks_behind);
  }
  return out;
}

}  // namespace fbdr::net
