#include "net/stats.h"

namespace fbdr::net {

std::string TrafficStats::to_string() const {
  return "round_trips=" + std::to_string(round_trips) +
         " pdus=" + std::to_string(pdus) + " entries=" + std::to_string(entries) +
         " dns_only=" + std::to_string(dns_only) +
         " referrals=" + std::to_string(referrals) +
         " bytes=" + std::to_string(bytes);
}

}  // namespace fbdr::net
