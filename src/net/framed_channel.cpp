#include "net/framed_channel.h"

#include "ldap/error.h"
#include "resync/endpoint.h"

namespace fbdr::net {

namespace {

wire::Bytes encode_error_frame(wire::ErrorFrame::Kind kind,
                               const std::string& message,
                               std::int32_t result_code = 0) {
  wire::ErrorFrame error;
  error.kind = kind;
  error.result_code = result_code;
  error.message = message;
  return wire::Codec::frame(wire::Codec::encode_error(error));
}

}  // namespace

wire::Bytes EndpointPipe::transfer(const wire::Bytes& frame) {
  wire::RequestFrame request;
  try {
    const wire::Bytes payload = wire::Codec::deframe(frame);
    if (wire::Codec::kind_of(payload) != wire::FrameKind::Request) {
      throw wire::CodecError("frame in request position is not a request");
    }
    request = wire::Codec::decode_request(payload);
  } catch (const wire::CodecError& e) {
    // The server cannot parse the frame, so it drops it; the client sees
    // the exchange fail at the transport level and retries.
    throw TransportError(std::string("garbled request frame: ") + e.what());
  }
  // Note the catch order: the specific protocol errors (stale cookie, busy)
  // must ship as their own kinds so the client-side rethrow is type-exact.
  try {
    return wire::Codec::frame(
        wire::Codec::encode_response(endpoint_->handle(request.query,
                                                       request.control)));
  } catch (const ldap::StaleCookieError& e) {
    return encode_error_frame(wire::ErrorFrame::Kind::StaleCookie, e.what());
  } catch (const ldap::BusyError& e) {
    return encode_error_frame(wire::ErrorFrame::Kind::Busy, e.what());
  } catch (const ldap::ProtocolError& e) {
    return encode_error_frame(wire::ErrorFrame::Kind::Protocol, e.what());
  } catch (const ldap::OperationError& e) {
    return encode_error_frame(wire::ErrorFrame::Kind::Operation, e.what(),
                              static_cast<std::int32_t>(e.code()));
  }
}

void EndpointPipe::send(const wire::Bytes& frame) {
  try {
    const wire::Bytes payload = wire::Codec::deframe(frame);
    if (wire::Codec::kind_of(payload) != wire::FrameKind::Abandon) return;
    endpoint_->abandon(wire::Codec::decode_abandon(payload));
  } catch (const wire::CodecError&) {
    // One-way garbage is silently dropped; abandon is best effort anyway.
  }
}

void EndpointPipe::elapse(std::uint64_t ticks) { endpoint_->tick(ticks); }

resync::ReSyncResponse FramedChannel::exchange(
    const ldap::Query& query, const resync::ReSyncControl& control) {
  const wire::Bytes request =
      wire::Codec::frame(wire::Codec::encode_request(query, control));
  traffic_.count_round_trip();
  traffic_.count_frame(request.size());
  const wire::Bytes reply = pipe_->transfer(request);  // TransportError flows
  traffic_.count_frame(reply.size());

  resync::ReSyncResponse response;
  wire::ErrorFrame error;
  bool is_error = false;
  try {
    const wire::Bytes payload = wire::Codec::deframe(reply);
    switch (wire::Codec::kind_of(payload)) {
      case wire::FrameKind::Response:
        response = wire::Codec::decode_response(payload);
        break;
      case wire::FrameKind::Error:
        error = wire::Codec::decode_error(payload);
        is_error = true;
        break;
      default:
        throw wire::CodecError("frame in response position is not a response");
    }
  } catch (const wire::CodecError& e) {
    throw TransportError(std::string("garbled response frame: ") + e.what());
  }
  if (is_error) wire::Codec::throw_error(error);

  for (const resync::EntryPdu& pdu : response.pdus) {
    if (pdu.entry != nullptr) {
      traffic_.note_entry();
    } else {
      traffic_.note_dn();
    }
  }
  if (response.referred()) traffic_.note_referral();
  return response;
}

void FramedChannel::abandon(const std::string& cookie) {
  const wire::Bytes frame =
      wire::Codec::frame(wire::Codec::encode_abandon(cookie));
  traffic_.count_frame(frame.size());
  try {
    pipe_->send(frame);
  } catch (const TransportError&) {
    // Best effort: a lost abandon only delays session expiry.
  }
}

void FramedChannel::elapse(std::uint64_t ticks) { pipe_->elapse(ticks); }

}  // namespace fbdr::net
