#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_injector.h"

namespace fbdr::net {

/// One phase of a chaos schedule: a FaultConfig held for `rounds`
/// replication rounds. A round is whatever the driver calls one — a
/// tick() of a topology, one poll of a replica — so the same schedule
/// drives an in-process FaultyPipe run and a socket run through a
/// netio::ChaosProxy, which is what makes the two worlds comparable.
struct FaultPhase {
  std::string name;
  FaultConfig config;
  std::uint64_t rounds = 1;
};

/// A named sequence of fault phases. Rounds past the end clamp to the last
/// phase (usually a quiet heal phase), so drivers can run extra quiescence
/// rounds without falling off the schedule.
struct FaultSchedule {
  std::string name;
  std::vector<FaultPhase> phases;

  const FaultConfig& config_at(std::uint64_t round) const;
  const FaultPhase& phase_at(std::uint64_t round) const;
  std::uint64_t total_rounds() const;
};

/// The four canonical socket-chaos schedules, mirroring the fault families
/// the in-process chaos suites exercise. Every schedule opens with a quiet
/// warmup, applies its fault family for a window, then ends with a quiet
/// heal phase the convergence check runs after. `seed` feeds the
/// FaultConfig of each phase, so a (preset, seed) pair names one exact
/// fault world on either transport.
///
/// Convention for the link-level spelling (netio::ChaosProxy::apply):
/// outage >= 1.0 in a phase means "full partition window" — new connects
/// refused, established traffic blackholed — rather than a probabilistic
/// per-exchange outage.
FaultSchedule partition_schedule(std::uint64_t seed);
FaultSchedule reset_storm_schedule(std::uint64_t seed);
FaultSchedule corruption_schedule(std::uint64_t seed);
/// Byte-quiet: the faults of a crash storm are SIGKILLs, injected by the
/// driver (ProcessTopology::crash + supervised respawn); the schedule only
/// shapes the warmup/storm/heal windows.
FaultSchedule crash_storm_schedule(std::uint64_t seed);

}  // namespace fbdr::net
