#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "ldap/query.h"
#include "resync/protocol.h"

namespace fbdr::resync {
class ReSyncEndpoint;
}

namespace fbdr::net {

/// A request or response was lost in transit (dropped, connection reset,
/// master unreachable). Unlike ldap::ProtocolError this says nothing about
/// session state — the exchange may or may not have been processed — so the
/// correct client reaction is to retry the same request under its
/// RetryPolicy, relying on the replay-safe cookie sequence numbers for
/// idempotence.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// The transport seam between a ReSync replica and its upstream endpoint —
/// the enterprise master or a relay replica re-serving its content — one
/// request/response exchange of the protocol. DirectChannel preserves the
/// historical infallible in-process call; FaultyChannel (fault_injector.h)
/// injects deterministic loss, duplication, reordering, delay and master
/// restarts so the recovery paths of §5.2 can be exercised.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Performs one exchange. Throws TransportError on (simulated) link
  /// failure and ldap::ProtocolError family on protocol-level rejection.
  virtual resync::ReSyncResponse exchange(const ldap::Query& query,
                                          const resync::ReSyncControl& control) = 0;

  /// Client-initiated abandon of a persistent search (best effort).
  virtual void abandon(const std::string& cookie) = 0;

  /// Logical time spent waiting on the link (retry backoff). Forwarded to
  /// the master clock so session admin limits keep running while a client
  /// backs off.
  virtual void elapse(std::uint64_t ticks) = 0;
};

/// The in-process channel: requests reach the endpoint unconditionally, in
/// order, exactly once — today's behavior, now behind the seam.
class DirectChannel final : public Channel {
 public:
  explicit DirectChannel(resync::ReSyncEndpoint& endpoint)
      : endpoint_(&endpoint) {}

  resync::ReSyncResponse exchange(const ldap::Query& query,
                                  const resync::ReSyncControl& control) override;
  void abandon(const std::string& cookie) override;
  void elapse(std::uint64_t ticks) override;

 private:
  resync::ReSyncEndpoint* endpoint_;
};

/// Client-side retry discipline for transport failures: up to max_attempts
/// tries, exponential backoff in logical ticks with deterministic jitter.
struct RetryPolicy {
  std::size_t max_attempts = 1;  // 1 = no retries
  std::uint64_t base_backoff_ticks = 1;
  double multiplier = 2.0;
  std::uint64_t max_backoff_ticks = 64;
  std::uint64_t jitter_seed = 0;  // 0 disables jitter

  /// Backoff before retry number `attempt` (0-based), jitter included.
  std::uint64_t backoff(std::size_t attempt) const;
};

/// Runs one exchange under the retry policy: TransportErrors consume
/// attempts (with backoff elapsed on the channel between tries); protocol
/// errors propagate immediately. `retries`, when given, accumulates the
/// number of re-sent requests.
resync::ReSyncResponse exchange_with_retry(Channel& channel,
                                           const ldap::Query& query,
                                           const resync::ReSyncControl& control,
                                           const RetryPolicy& policy,
                                           std::uint64_t* retries = nullptr);

}  // namespace fbdr::net
