#include "select/selector.h"

#include <algorithm>

namespace fbdr::select {

using ldap::Query;

FilterSelector::FilterSelector(Config config, Generalizer generalizer,
                               SizeEstimator estimator)
    : config_(config),
      generalizer_(std::move(generalizer)),
      estimator_(std::move(estimator)) {}

std::optional<FilterSelector::Revolution> FilterSelector::observe(
    const Query& query) {
  ++observed_;
  ++since_revolution_;
  if (const auto candidate = generalizer_.generalize(query)) {
    const std::string key = candidate->key();
    auto [it, inserted] = candidates_.try_emplace(key);
    if (inserted) {
      it->second.query = *candidate;
      it->second.size = std::max<std::size_t>(1, estimator_(*candidate));
    }
    ++it->second.hits;
  }
  if (since_revolution_ >= config_.revolution_interval) {
    return revolve();
  }
  return std::nullopt;
}

FilterSelector::Revolution FilterSelector::revolve() {
  since_revolution_ = 0;
  ++revolutions_;

  // Rank candidates by benefit/size, best first; deterministic tie-break on
  // the query key.
  std::vector<Candidate*> ranked;
  ranked.reserve(candidates_.size());
  for (auto& [key, candidate] : candidates_) {
    if (candidate.hits > 0) ranked.push_back(&candidate);
  }
  std::sort(ranked.begin(), ranked.end(), [](const Candidate* a, const Candidate* b) {
    const double ra = static_cast<double>(a->hits) / static_cast<double>(a->size);
    const double rb = static_cast<double>(b->hits) / static_cast<double>(b->size);
    if (ra != rb) return ra > rb;
    if (a->hits != b->hits) return a->hits > b->hits;
    return a->query.key() < b->query.key();
  });

  // Greedy knapsack under the entry and filter budgets.
  Revolution revolution;
  std::size_t entries = 0;
  std::size_t filters = 0;
  std::vector<Candidate*> selected;
  for (Candidate* candidate : ranked) {
    if (filters + 1 > config_.budget_filters) break;
    if (entries + candidate->size > config_.budget_entries) continue;
    entries += candidate->size;
    ++filters;
    selected.push_back(candidate);
  }

  // Diff against the previous stored set.
  for (Candidate* candidate : selected) {
    revolution.install.push_back(candidate->query);
    if (!candidate->stored) {
      revolution.fetched.push_back(candidate->query);
      revolution.fetched_entries += candidate->size;
    }
  }
  for (auto& [key, candidate] : candidates_) {
    const bool keep =
        std::find(selected.begin(), selected.end(), &candidate) != selected.end();
    if (candidate.stored && !keep) {
      revolution.dropped.push_back(candidate.query);
    }
    candidate.stored = keep;
  }
  stored_entries_ = entries;

  // Reset benefits ("the number of hits for a candidate since the last
  // update") and optionally forget cold candidates.
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    it->second.hits = 0;
    if (config_.prune_cold_candidates && !it->second.stored) {
      it = candidates_.erase(it);
    } else {
      ++it;
    }
  }
  return revolution;
}

std::vector<Query> FilterSelector::stored() const {
  std::vector<Query> out;
  for (const auto& [key, candidate] : candidates_) {
    if (candidate.stored) out.push_back(candidate.query);
  }
  return out;
}

}  // namespace fbdr::select
