#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "select/generalize.h"
#include "select/selector.h"

namespace fbdr::select {

/// Comparison baseline: the evolution/revolution scheme of Kapitskaia, Ng
/// and Srivastava [12] as sketched in §6.2. Benefits of both the *actual*
/// (stored) and *candidate* filters are updated on every user query
/// (evolution); when the candidates' aggregate benefit exceeds the actuals'
/// by a configured factor, a revolution merges the two lists and re-selects
/// by benefit/size. The paper's own selector (FilterSelector) approximates
/// this with strictly periodic revolutions, which suits replication better
/// ("using evolutions as described above requires frequent updates to the
/// stored filter list").
class EvolutionSelector {
 public:
  struct Config {
    /// Revolution triggers when candidate benefit > threshold * actual
    /// benefit.
    double revolution_threshold = 1.2;
    /// Benefits are multiplied by this factor at each revolution (aging).
    double decay = 0.5;
    std::size_t budget_entries = std::numeric_limits<std::size_t>::max();
    std::size_t budget_filters = std::numeric_limits<std::size_t>::max();
    /// Minimum observations between revolutions (guards against thrashing).
    std::size_t min_interval = 100;
  };

  EvolutionSelector(Config config, Generalizer generalizer,
                    FilterSelector::SizeEstimator estimator);

  std::optional<FilterSelector::Revolution> observe(const ldap::Query& query);

  std::vector<ldap::Query> stored() const;
  std::uint64_t revolutions() const noexcept { return revolutions_; }
  std::size_t candidate_count() const noexcept { return candidates_.size(); }

 private:
  struct Candidate {
    ldap::Query query;
    double benefit = 0.0;
    std::size_t size = 0;
    bool stored = false;
  };

  FilterSelector::Revolution revolve();

  Config config_;
  Generalizer generalizer_;
  FilterSelector::SizeEstimator estimator_;
  std::map<std::string, Candidate> candidates_;
  std::uint64_t since_revolution_ = 0;
  std::uint64_t revolutions_ = 0;
};

}  // namespace fbdr::select
