#include "select/evolution.h"

#include <algorithm>

namespace fbdr::select {

using ldap::Query;

EvolutionSelector::EvolutionSelector(Config config, Generalizer generalizer,
                                     FilterSelector::SizeEstimator estimator)
    : config_(config),
      generalizer_(std::move(generalizer)),
      estimator_(std::move(estimator)) {}

std::optional<FilterSelector::Revolution> EvolutionSelector::observe(
    const Query& query) {
  ++since_revolution_;
  if (const auto candidate = generalizer_.generalize(query)) {
    const std::string key = candidate->key();
    auto [it, inserted] = candidates_.try_emplace(key);
    if (inserted) {
      it->second.query = *candidate;
      it->second.size = std::max<std::size_t>(1, estimator_(*candidate));
    }
    it->second.benefit += 1.0;  // evolution: per-query benefit update
  }

  if (since_revolution_ < config_.min_interval) return std::nullopt;
  double stored_benefit = 0.0;
  double candidate_benefit = 0.0;
  for (const auto& [key, candidate] : candidates_) {
    (candidate.stored ? stored_benefit : candidate_benefit) += candidate.benefit;
  }
  if (candidate_benefit > config_.revolution_threshold * stored_benefit) {
    return revolve();
  }
  return std::nullopt;
}

FilterSelector::Revolution EvolutionSelector::revolve() {
  since_revolution_ = 0;
  ++revolutions_;

  std::vector<Candidate*> ranked;
  ranked.reserve(candidates_.size());
  for (auto& [key, candidate] : candidates_) {
    if (candidate.benefit > 0.0) ranked.push_back(&candidate);
  }
  std::sort(ranked.begin(), ranked.end(), [](const Candidate* a, const Candidate* b) {
    const double ra = a->benefit / static_cast<double>(a->size);
    const double rb = b->benefit / static_cast<double>(b->size);
    if (ra != rb) return ra > rb;
    return a->query.key() < b->query.key();
  });

  FilterSelector::Revolution revolution;
  std::size_t entries = 0;
  std::size_t filters = 0;
  std::vector<Candidate*> selected;
  for (Candidate* candidate : ranked) {
    if (filters + 1 > config_.budget_filters) break;
    if (entries + candidate->size > config_.budget_entries) continue;
    entries += candidate->size;
    ++filters;
    selected.push_back(candidate);
  }

  for (Candidate* candidate : selected) {
    revolution.install.push_back(candidate->query);
    if (!candidate->stored) {
      revolution.fetched.push_back(candidate->query);
      revolution.fetched_entries += candidate->size;
    }
  }
  for (auto& [key, candidate] : candidates_) {
    const bool keep =
        std::find(selected.begin(), selected.end(), &candidate) != selected.end();
    if (candidate.stored && !keep) revolution.dropped.push_back(candidate.query);
    candidate.stored = keep;
    candidate.benefit *= config_.decay;  // aging instead of a hard reset
  }
  return revolution;
}

std::vector<Query> EvolutionSelector::stored() const {
  std::vector<Query> out;
  for (const auto& [key, candidate] : candidates_) {
    if (candidate.stored) out.push_back(candidate.query);
  }
  return out;
}

}  // namespace fbdr::select
