#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ldap/query.h"
#include "ldap/query_template.h"
#include "ldap/schema.h"

namespace fbdr::select {

/// Generalizes user queries into candidate replication filters (§6.1):
/// "generalized form of user queries can be used to represent frequently
/// accessed regions". Two guideline families from [12] are supported through
/// template-to-template rules:
///   (i)  generalization based on attribute components — e.g.
///        (telephoneNumber=261-7580) -> (telephoneNumber=261-758*),
///        (serialNumber=041234)      -> (serialNumber=04*);
///   (ii) generalization based on the natural hierarchy of filters — e.g.
///        (&(dept=2406)(div=X))      -> (&(div=X)(dept=*)).
///
/// A rule matches the user query's filter against a template and emits the
/// candidate template instantiated with transformed slot bindings. Rules are
/// tried in registration order.
class Generalizer {
 public:
  /// Maps the user query's slot bindings to the candidate's slot bindings.
  using SlotTransform =
      std::function<std::vector<std::string>(const std::vector<std::string>&)>;

  struct Rule {
    ldap::FilterTemplate user_template;
    ldap::FilterTemplate candidate_template;
    SlotTransform transform;
  };

  explicit Generalizer(const ldap::Schema& schema = ldap::Schema::default_instance())
      : schema_(&schema) {}

  void add_rule(std::string_view user_template, std::string_view candidate_template,
                SlotTransform transform);

  /// Generalizes one user query; the candidate keeps the user query's base,
  /// scope and attribute selection. Returns nullopt when no rule matches.
  /// When no rule matches the filter as written, the canonical IR rewrite of
  /// the filter (flattened, child-sorted, deduplicated) is tried against the
  /// rules too, so spelling variants of a covered query still generalize.
  std::optional<ldap::Query> generalize(const ldap::Query& query) const;

  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  const ldap::Schema* schema_;
  std::vector<Rule> rules_;
};

/// Transform: truncate the single slot value to its first `len` characters
/// (attribute-component prefix generalization).
Generalizer::SlotTransform prefix_transform(std::size_t len);

/// Transform: keep only the slots at the given indices, in order (hierarchy
/// generalization: drop the fine-grained component).
Generalizer::SlotTransform keep_slots(std::vector<std::size_t> indices);

/// Transform: keep the suffix of slot 0 starting at the first occurrence of
/// `marker` (e.g. marker "@" maps john@us.ibm.com -> @us.ibm.com).
Generalizer::SlotTransform suffix_from(char marker);

/// Transform: produce no slots (fully constant candidate templates).
Generalizer::SlotTransform no_slots();

}  // namespace fbdr::select
