#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ldap/query.h"
#include "select/generalize.h"

namespace fbdr::select {

/// The paper's filter-selection algorithm (§6.2): maintain hit statistics
/// for candidate generalized filters; every R queries (a *revolution*)
/// re-select the stored filter set by best benefit-to-size ratio under a
/// replica budget. "The benefit is defined as the number of hits for a
/// candidate since the last update, while size is the estimated number of
/// entries matching the filter."
class FilterSelector {
 public:
  /// Estimates the number of entries matching a candidate query.
  using SizeEstimator = std::function<std::size_t(const ldap::Query&)>;

  struct Config {
    /// Queries between revolutions (the paper's R: 6000/10000 in Fig. 5/7).
    std::size_t revolution_interval = 10000;
    /// Replica entry budget for the stored set.
    std::size_t budget_entries = std::numeric_limits<std::size_t>::max();
    /// Maximum number of stored filters.
    std::size_t budget_filters = std::numeric_limits<std::size_t>::max();
    /// Candidates with no hits since the last revolution are forgotten.
    bool prune_cold_candidates = true;
  };

  /// The outcome of a revolution.
  struct Revolution {
    std::vector<ldap::Query> install;   // the new stored set (complete)
    std::vector<ldap::Query> fetched;   // additions (cost: fetch their content)
    std::vector<ldap::Query> dropped;   // evictions
    std::size_t fetched_entries = 0;    // update traffic of the additions
  };

  FilterSelector(Config config, Generalizer generalizer, SizeEstimator estimator);

  /// Observes one user query: generalizes it to a candidate, accumulates its
  /// hit statistic, and — every revolution_interval observations — performs
  /// a revolution. Returns the revolution when one occurred.
  std::optional<Revolution> observe(const ldap::Query& query);

  /// Forces a revolution now (also used to bootstrap the initial set).
  Revolution revolve();

  /// Currently selected stored set.
  std::vector<ldap::Query> stored() const;
  std::size_t stored_entry_budget_used() const noexcept { return stored_entries_; }
  std::size_t candidate_count() const noexcept { return candidates_.size(); }
  std::uint64_t observed() const noexcept { return observed_; }
  std::uint64_t revolutions() const noexcept { return revolutions_; }

 private:
  struct Candidate {
    ldap::Query query;
    std::uint64_t hits = 0;       // since last revolution
    std::size_t size = 0;         // estimated entries
    bool stored = false;
  };

  Config config_;
  Generalizer generalizer_;
  SizeEstimator estimator_;
  std::map<std::string, Candidate> candidates_;  // by query key
  std::size_t stored_entries_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t since_revolution_ = 0;
  std::uint64_t revolutions_ = 0;
};

}  // namespace fbdr::select
