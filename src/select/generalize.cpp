#include "select/generalize.h"

#include "ldap/filter_ir.h"

namespace fbdr::select {

using ldap::FilterTemplate;
using ldap::Query;

void Generalizer::add_rule(std::string_view user_template,
                           std::string_view candidate_template,
                           SlotTransform transform) {
  rules_.push_back(Rule{FilterTemplate::parse(user_template),
                        FilterTemplate::parse(candidate_template),
                        std::move(transform)});
}

std::optional<Query> Generalizer::generalize(const Query& query) const {
  if (!query.filter) return std::nullopt;
  auto try_rules = [&](const ldap::Filter& filter) -> std::optional<Query> {
    for (const Rule& rule : rules_) {
      const auto slots = rule.user_template.match(filter, *schema_);
      if (!slots) continue;
      Query candidate = query;
      candidate.filter = rule.candidate_template.instantiate(rule.transform(*slots));
      return candidate;
    }
    return std::nullopt;
  };
  if (auto candidate = try_rules(*query.filter)) return candidate;
  // Retry against the canonical IR rewrite: rules written for the canonical
  // spelling then also cover re-ordered or duplicated variants.
  const ldap::FilterIrPtr ir =
      ldap::FilterInterner::for_schema(*schema_).intern(query.filter);
  const ldap::FilterPtr canonical = ir->to_filter();
  if (ldap::filters_equal(*canonical, *query.filter)) return std::nullopt;
  return try_rules(*canonical);
}

Generalizer::SlotTransform prefix_transform(std::size_t len) {
  return [len](const std::vector<std::string>& slots) {
    std::vector<std::string> out;
    out.reserve(slots.size());
    for (const std::string& slot : slots) {
      out.push_back(slot.substr(0, len));
    }
    return out;
  };
}

Generalizer::SlotTransform keep_slots(std::vector<std::size_t> indices) {
  return [indices = std::move(indices)](const std::vector<std::string>& slots) {
    std::vector<std::string> out;
    out.reserve(indices.size());
    for (const std::size_t index : indices) {
      out.push_back(slots.at(index));
    }
    return out;
  };
}

Generalizer::SlotTransform suffix_from(char marker) {
  return [marker](const std::vector<std::string>& slots) {
    std::vector<std::string> out;
    out.reserve(slots.size());
    for (const std::string& slot : slots) {
      const std::size_t pos = slot.find(marker);
      out.push_back(pos == std::string::npos ? slot : slot.substr(pos));
    }
    return out;
  };
}

Generalizer::SlotTransform no_slots() {
  return [](const std::vector<std::string>&) { return std::vector<std::string>{}; };
}

}  // namespace fbdr::select
