#include "sync/content_digest.h"

namespace fbdr::sync {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t seed, const std::string& text) {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Separator folded between fields so "ab"+"c" and "a"+"bc" differ.
std::uint64_t fnv1a_sep(std::uint64_t hash) {
  hash ^= 0x1f;
  hash *= kFnvPrime;
  return hash;
}

}  // namespace

std::uint64_t ContentDigest::hash_key(const std::string& key) {
  return fnv1a(kFnvOffset, key);
}

std::uint64_t ContentDigest::hash_entry(const ldap::Entry& entry) {
  std::uint64_t hash = fnv1a(kFnvOffset, entry.dn().norm_key());
  for (const auto& [attr, values] : entry.attributes()) {
    hash = fnv1a_sep(hash);
    hash = fnv1a(hash, attr);
    for (const std::string& value : values) {
      hash = fnv1a_sep(hash);
      hash = fnv1a(hash, value);
    }
  }
  return hash;
}

std::uint32_t ContentDigest::bucket_of(const std::string& key) {
  return static_cast<std::uint32_t>(hash_key(key) >> 56);
}

std::uint64_t ContentDigest::contribution(std::uint64_t key_hash,
                                          std::uint64_t entry_hash) {
  // splitmix64-style finalizer over the pair: the addition in the bucket
  // fold is commutative, so each pair must contribute a well-mixed value or
  // correlated entries could cancel.
  std::uint64_t mixed = key_hash ^ (entry_hash + 0x9e3779b97f4a7c15ull +
                                    (key_hash << 6) + (key_hash >> 2));
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ull;
  mixed ^= mixed >> 27;
  mixed *= 0x94d049bb133111ebull;
  mixed ^= mixed >> 31;
  return mixed;
}

void ContentDigest::subtract(const std::string& key, std::uint64_t entry_hash) {
  const std::uint64_t key_hash = hash_key(key);
  const std::uint64_t value = contribution(key_hash, entry_hash);
  Bucket& bucket = buckets_[static_cast<std::uint32_t>(key_hash >> 56)];
  bucket.digest -= value;
  --bucket.count;
  root_ -= value;
}

void ContentDigest::upsert(const std::string& key, const ldap::Entry& entry) {
  const std::uint64_t entry_hash = hash_entry(entry);
  const auto it = hashes_.find(key);
  if (it != hashes_.end()) {
    if (it->second == entry_hash) return;
    subtract(key, it->second);
    it->second = entry_hash;
  } else {
    hashes_.emplace(key, entry_hash);
  }
  const std::uint64_t key_hash = hash_key(key);
  const std::uint64_t value = contribution(key_hash, entry_hash);
  Bucket& bucket = buckets_[static_cast<std::uint32_t>(key_hash >> 56)];
  bucket.digest += value;
  ++bucket.count;
  root_ += value;
}

void ContentDigest::erase(const std::string& key) {
  const auto it = hashes_.find(key);
  if (it == hashes_.end()) return;
  subtract(key, it->second);
  hashes_.erase(it);
}

void ContentDigest::clear() {
  buckets_.assign(kBuckets, Bucket{});
  hashes_.clear();
  root_ = 0;
}

std::vector<BucketDigest> ContentDigest::bucket_digests() const {
  std::vector<BucketDigest> out;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i].count == 0) continue;
    out.push_back({i, buckets_[i].digest, buckets_[i].count});
  }
  return out;
}

std::uint64_t ContentDigest::hash_of(const std::string& key) const {
  const auto it = hashes_.find(key);
  return it == hashes_.end() ? 0 : it->second;
}

}  // namespace fbdr::sync
