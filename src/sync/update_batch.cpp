#include "sync/update_batch.h"

namespace fbdr::sync {

std::size_t UpdateBatch::bytes(std::size_t entry_padding) const {
  std::size_t total = 0;
  for (const ldap::EntryPtr& e : adds) total += e->approx_size_bytes(entry_padding);
  for (const ldap::EntryPtr& e : mods) total += e->approx_size_bytes(entry_padding);
  for (const ldap::Dn& dn : deletes) total += dn.to_string().size();
  for (const ldap::Dn& dn : retains) total += dn.to_string().size();
  return total;
}

std::string UpdateBatch::to_string() const {
  return std::string(full_reload ? "[reload] " : "") +
         "adds=" + std::to_string(adds.size()) +
         " mods=" + std::to_string(mods.size()) +
         " deletes=" + std::to_string(deletes.size()) +
         " retains=" + std::to_string(retains.size());
}

}  // namespace fbdr::sync
