#include "sync/replica_content.h"

#include <set>

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;

void ReplicaContent::apply(const UpdateBatch& batch) {
  if (batch.full_reload) entries_.clear();
  for (const EntryPtr& entry : batch.adds) {
    entries_[entry->dn().norm_key()] = entry;
  }
  for (const EntryPtr& entry : batch.mods) {
    entries_[entry->dn().norm_key()] = entry;
  }
  for (const Dn& dn : batch.deletes) {
    entries_.erase(dn.norm_key());
  }
  if (batch.complete_enumeration) {
    // Equation (3): anything the batch did not mention has left the content.
    std::set<std::string> mentioned;
    for (const EntryPtr& entry : batch.adds) mentioned.insert(entry->dn().norm_key());
    for (const EntryPtr& entry : batch.mods) mentioned.insert(entry->dn().norm_key());
    for (const Dn& dn : batch.retains) mentioned.insert(dn.norm_key());
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (mentioned.count(it->first) == 0) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool ReplicaContent::contains(const Dn& dn) const {
  return entries_.count(dn.norm_key()) > 0;
}

EntryPtr ReplicaContent::find(const Dn& dn) const {
  const auto it = entries_.find(dn.norm_key());
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::string> ReplicaContent::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::vector<EntryPtr> ReplicaContent::entries() const {
  std::vector<EntryPtr> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

std::size_t ReplicaContent::bytes(std::size_t entry_padding) const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry->approx_size_bytes(entry_padding);
  }
  return total;
}

}  // namespace fbdr::sync
