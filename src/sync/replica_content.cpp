#include "sync/replica_content.h"

#include <set>

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;

void ReplicaContent::apply(const UpdateBatch& batch) {
  if (!batch.continued) {
    // First (or only) page of a logical batch: any unfinished paged
    // enumeration was aborted and its partial mentioned set is stale.
    enum_mentioned_.clear();
    enum_pending_ = false;
    if (batch.full_reload) {
      entries_.clear();
      digest_.clear();
    }
  }
  for (const EntryPtr& entry : batch.adds) {
    const std::string key = entry->dn().norm_key();
    entries_[key] = entry;
    digest_.upsert(key, *entry);
  }
  for (const EntryPtr& entry : batch.mods) {
    const std::string key = entry->dn().norm_key();
    entries_[key] = entry;
    digest_.upsert(key, *entry);
  }
  for (const Dn& dn : batch.deletes) {
    const std::string key = dn.norm_key();
    entries_.erase(key);
    digest_.erase(key);
  }
  if (batch.complete_enumeration) {
    // Equation (3): anything the enumeration did not mention has left the
    // content. Across a paged enumeration the mentioned set accumulates;
    // the drop waits for the final page.
    for (const EntryPtr& entry : batch.adds) {
      enum_mentioned_.insert(entry->dn().norm_key());
    }
    for (const EntryPtr& entry : batch.mods) {
      enum_mentioned_.insert(entry->dn().norm_key());
    }
    for (const Dn& dn : batch.retains) enum_mentioned_.insert(dn.norm_key());
    if (batch.more) {
      enum_pending_ = true;
    } else {
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (enum_mentioned_.count(it->first) == 0) {
          digest_.erase(it->first);
          it = entries_.erase(it);
        } else {
          ++it;
        }
      }
      enum_mentioned_.clear();
      enum_pending_ = false;
    }
  }
}

bool ReplicaContent::contains(const Dn& dn) const {
  return entries_.count(dn.norm_key()) > 0;
}

EntryPtr ReplicaContent::find(const Dn& dn) const {
  const auto it = entries_.find(dn.norm_key());
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::string> ReplicaContent::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::vector<EntryPtr> ReplicaContent::entries() const {
  std::vector<EntryPtr> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

std::vector<EntryFingerprint> ReplicaContent::fingerprints_for(
    const std::vector<std::uint32_t>& buckets) const {
  std::set<std::uint32_t> wanted(buckets.begin(), buckets.end());
  std::vector<EntryFingerprint> out;
  for (const auto& [key, entry] : entries_) {
    if (wanted.count(ContentDigest::bucket_of(key)) == 0) continue;
    out.push_back({entry->dn(), digest_.hash_of(key)});
  }
  return out;
}

std::size_t ReplicaContent::bytes(std::size_t entry_padding) const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry->approx_size_bytes(entry_padding);
  }
  return total;
}

}  // namespace fbdr::sync
