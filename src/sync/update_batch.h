#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "ldap/entry.h"

namespace fbdr::sync {

/// One batch of updates shipped from the master to a replica for one
/// replicated query, mirroring equation (2)/(3) of the paper:
///   adds    = E01(t, t')  entries that moved into the content,
///   mods    = E11(t, t')  entries changed but still inside,
///   deletes = E10(t, t')  DNs of entries that moved out,
///   retains = Eun(t, t')  DNs of unchanged entries (only used by protocols
///                         without complete history information, eq. 3).
struct UpdateBatch {
  std::vector<ldap::EntryPtr> adds;
  std::vector<ldap::EntryPtr> mods;
  std::vector<ldap::Dn> deletes;
  std::vector<ldap::Dn> retains;
  bool full_reload = false;  // replica must clear content before applying
  /// Equation (3) mode: the batch enumerates the entire content (adds + mods
  /// + retains); the replica drops any entry not mentioned.
  bool complete_enumeration = false;
  /// Paged delivery: `more` = later pages of this logical batch follow, so
  /// completeness actions (dropping unmentioned entries) must wait for the
  /// final page; `continued` = this batch is page 2..n (do not clear on
  /// full_reload again, keep accumulating the mentioned set).
  bool more = false;
  bool continued = false;

  bool empty() const {
    return adds.empty() && mods.empty() && deletes.empty() && retains.empty() &&
           !full_reload;
  }

  /// Entries transferred (the unit of Figs. 6-7).
  std::size_t entries_sent() const { return adds.size() + mods.size(); }

  /// DN-only PDUs transferred.
  std::size_t dns_sent() const { return deletes.size() + retains.size(); }

  /// Approximate wire bytes, with `entry_padding` modelling the unmodelled
  /// attribute payload of case-study entries.
  std::size_t bytes(std::size_t entry_padding = 0) const;

  std::string to_string() const;
};

}  // namespace fbdr::sync
