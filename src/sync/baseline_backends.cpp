#include "sync/baseline_backends.h"

#include <map>
#include <set>

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;
using server::ChangeRecord;
using server::ChangeType;

namespace {

/// Final per-DN disposition after replaying the journal segment.
enum class Action {
  Candidate,  // entry exists; classify against the current DIT
  Gone,       // a tombstone exists; the DN must be shipped as a delete
};

/// Replays the journal records after `last_seq` into a last-wins per-DN
/// action map (tombstone/changelog protocols are stateless per session and
/// only see the final situation of each DN).
std::map<std::string, std::pair<Dn, Action>> replay(
    const server::ChangeJournal& journal, std::uint64_t last_seq) {
  std::map<std::string, std::pair<Dn, Action>> finals;
  for (const ChangeRecord* record : journal.since(last_seq)) {
    switch (record->type) {
      case ChangeType::Add:
      case ChangeType::Modify:
        finals[record->dn.norm_key()] = {record->dn, Action::Candidate};
        break;
      case ChangeType::Delete:
        finals[record->dn.norm_key()] = {record->dn, Action::Gone};
        break;
      case ChangeType::ModifyDn:
        finals[record->dn.norm_key()] = {record->dn, Action::Gone};
        finals[record->new_dn.norm_key()] = {record->new_dn, Action::Candidate};
        break;
    }
  }
  return finals;
}

/// Attribute names referenced by a filter.
std::set<std::string> filter_attributes(const ldap::Filter& filter) {
  std::set<std::string> attrs;
  filter.for_each_predicate(
      [&](const ldap::Filter& p) { attrs.insert(p.attribute()); });
  return attrs;
}

UpdateBatch make_initial(const server::DirectoryServer& master,
                         const ContentTracker& tracker) {
  UpdateBatch batch;
  batch.full_reload = true;
  master.dit().for_each([&](const EntryPtr& entry) {
    if (tracker.matches_query(*entry)) batch.adds.push_back(entry);
  });
  return batch;
}

}  // namespace

// --- TombstoneBackend ---

TombstoneBackend::TombstoneBackend(const server::DirectoryServer& master,
                                   const ldap::Schema& schema)
    : master_(&master), schema_(&schema) {}

std::size_t TombstoneBackend::register_query(const ldap::Query& query) {
  State state;
  state.tracker = std::make_unique<ContentTracker>(query, *schema_);
  states_.push_back(std::move(state));
  return states_.size() - 1;
}

UpdateBatch TombstoneBackend::initial(std::size_t id) {
  State& state = states_.at(id);
  state.last_seq = master_->journal().last_seq();
  state.initialized = true;
  return make_initial(*master_, *state.tracker);
}

UpdateBatch TombstoneBackend::poll(std::size_t id) {
  State& state = states_.at(id);
  if (!state.initialized) return initial(id);
  UpdateBatch batch;
  for (const auto& [key, dn_action] : replay(master_->journal(), state.last_seq)) {
    const auto& [dn, action] = dn_action;
    if (action == Action::Gone) {
      // A tombstone has no attributes: the master cannot tell whether the
      // entry was in this content, so the DN is always shipped.
      batch.deletes.push_back(dn);
      continue;
    }
    const EntryPtr current = master_->dit().find(dn);
    if (!current) {
      batch.deletes.push_back(dn);  // raced with a later removal
      continue;
    }
    if (state.tracker->matches_query(*current)) {
      batch.adds.push_back(current);  // replica upserts
    } else {
      // Changed but not matching now: only modifyTimestamp is known, so a
      // conservative delete is shipped in case the entry moved out.
      batch.deletes.push_back(dn);
    }
  }
  state.last_seq = master_->journal().last_seq();
  return batch;
}

void TombstoneBackend::on_change(const ChangeRecord&) {
  // Stateless between polls: everything is derived from the journal.
}

// --- ChangelogBackend ---

ChangelogBackend::ChangelogBackend(const server::DirectoryServer& master,
                                   const ldap::Schema& schema)
    : master_(&master), schema_(&schema) {}

std::size_t ChangelogBackend::register_query(const ldap::Query& query) {
  State state;
  state.tracker = std::make_unique<ContentTracker>(query, *schema_);
  states_.push_back(std::move(state));
  return states_.size() - 1;
}

UpdateBatch ChangelogBackend::initial(std::size_t id) {
  State& state = states_.at(id);
  state.last_seq = master_->journal().last_seq();
  state.initialized = true;
  return make_initial(*master_, *state.tracker);
}

UpdateBatch ChangelogBackend::poll(std::size_t id) {
  State& state = states_.at(id);
  if (!state.initialized) return initial(id);
  const std::set<std::string> filter_attrs =
      state.tracker->query().filter ? filter_attributes(*state.tracker->query().filter)
                                    : std::set<std::string>{};

  // Track, per DN, whether any change record since the last poll touched a
  // filter attribute (the changelog's extra information over tombstones).
  std::map<std::string, bool> touched_filter;
  for (const ChangeRecord* record : master_->journal().since(state.last_seq)) {
    bool touches = record->type != ChangeType::Modify;  // add/del/rename: yes
    if (record->type == ChangeType::Modify) {
      for (const server::Modification& mod : record->mods) {
        if (filter_attrs.count(mod.attr) > 0) {
          touches = true;
          break;
        }
      }
    }
    touched_filter[record->dn.norm_key()] =
        touched_filter[record->dn.norm_key()] || touches;
    if (record->type == ChangeType::ModifyDn) {
      touched_filter[record->new_dn.norm_key()] = true;
    }
  }

  UpdateBatch batch;
  for (const auto& [key, dn_action] : replay(master_->journal(), state.last_seq)) {
    const auto& [dn, action] = dn_action;
    if (action == Action::Gone) {
      // "If an entry is first modified out of the content and then deleted,
      // change logs are not sufficient to determine whether the entry moved
      // out of the content" — ship every deleted DN.
      batch.deletes.push_back(dn);
      continue;
    }
    const EntryPtr current = master_->dit().find(dn);
    if (!current) {
      batch.deletes.push_back(dn);
      continue;
    }
    if (state.tracker->matches_query(*current)) {
      batch.adds.push_back(current);
    } else if (touched_filter[key]) {
      // The change may have moved the entry out of the content.
      batch.deletes.push_back(dn);
    }
    // else: only non-filter attributes changed on a non-matching entry; its
    // membership cannot have changed, nothing to ship.
  }
  state.last_seq = master_->journal().last_seq();
  return batch;
}

void ChangelogBackend::on_change(const ChangeRecord&) {
  // Stateless between polls: everything is derived from the journal.
}

// --- FullReloadBackend ---

FullReloadBackend::FullReloadBackend(const server::DirectoryServer& master,
                                     const ldap::Schema& schema)
    : master_(&master), schema_(&schema) {}

std::size_t FullReloadBackend::register_query(const ldap::Query& query) {
  queries_.push_back(query);
  return queries_.size() - 1;
}

UpdateBatch FullReloadBackend::initial(std::size_t id) {
  ContentTracker tracker(queries_.at(id), *schema_);
  return make_initial(*master_, tracker);
}

}  // namespace fbdr::sync
