#include "sync/session_history_backend.h"

#include "ldap/error.h"

namespace fbdr::sync {

SessionHistoryBackend::SessionHistoryBackend(const server::Dit& master_dit,
                                             const ldap::Schema& schema)
    : dit_(&master_dit), schema_(&schema) {}

std::size_t SessionHistoryBackend::register_query(const ldap::Query& query) {
  Slot slot;
  slot.session = std::make_unique<QuerySession>(query, *schema_);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

const ContentTracker& SessionHistoryBackend::tracker(std::size_t id) const {
  return slots_.at(id).session->tracker();
}

void SessionHistoryBackend::unregister_query(std::size_t id) {
  slots_.at(id).active = false;
}

UpdateBatch SessionHistoryBackend::initial(std::size_t id) {
  Slot& slot = slots_.at(id);
  if (!slot.active) {
    throw ldap::ProtocolError("initial() on an unregistered query");
  }
  return slot.session->initial(*dit_);
}

void SessionHistoryBackend::on_change(const server::ChangeRecord& record) {
  for (Slot& slot : slots_) {
    if (slot.active) slot.session->on_change(record);
  }
}

UpdateBatch SessionHistoryBackend::poll(std::size_t id) {
  Slot& slot = slots_.at(id);
  if (!slot.active) {
    throw ldap::ProtocolError("poll() on an unregistered query");
  }
  if (!slot.session->initialized()) return slot.session->initial(*dit_);
  return slot.session->poll();
}

std::size_t SessionHistoryBackend::pending_events() const {
  std::size_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.active) total += slot.session->pending_events();
  }
  return total;
}

}  // namespace fbdr::sync
