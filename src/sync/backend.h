#pragma once

#include <cstddef>
#include <string>

#include "ldap/query.h"
#include "server/change.h"
#include "sync/update_batch.h"

namespace fbdr::sync {

/// Master-side synchronization back-end serving one replica's set of
/// replicated queries. Four implementations are compared (§5.2):
///
///   - SessionHistoryBackend: ReSync's approach — per-session history of
///     entries leaving each content; minimal update sets.
///   - TombstoneBackend: deleted entries leave attribute-less tombstones;
///     every deleted DN since the last poll must be shipped.
///   - ChangelogBackend: a log of changed attributes; deletes and
///     modifies-out-of-content cannot be classified, so conservative delete
///     notifications are shipped.
///   - FullReloadBackend: retransmit the whole content each poll.
///
/// Usage: register queries, feed every master ChangeRecord via on_change,
/// pull batches with initial() then poll(). Applying each returned batch to
/// the replica's content must converge it to the master's (tested).
class SyncBackend {
 public:
  virtual ~SyncBackend() = default;

  /// Registers a replicated query; returns its handle.
  virtual std::size_t register_query(const ldap::Query& query) = 0;

  /// Full initial content for a freshly registered query.
  virtual UpdateBatch initial(std::size_t id) = 0;

  /// Updates accumulated since the previous initial()/poll() for this query.
  virtual UpdateBatch poll(std::size_t id) = 0;

  /// Feeds one journaled master update to the back-end.
  virtual void on_change(const server::ChangeRecord& record) = 0;

  virtual std::string name() const = 0;
};

}  // namespace fbdr::sync
