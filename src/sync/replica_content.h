#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ldap/entry.h"
#include "sync/content_digest.h"
#include "sync/update_batch.h"

namespace fbdr::sync {

/// The replica-side entry store for one replicated query: applies update
/// batches produced by any sync back-end. Convergence means this store's
/// contents equal the master-side ContentTracker's after each poll.
class ReplicaContent {
 public:
  /// Applies one batch. Handles full reloads, the add/mod/delete actions of
  /// equation (2) and the retain-based complete enumeration of equation (3).
  /// Deletes of unknown DNs (the conservative notifications of the baseline
  /// protocols) are ignored.
  ///
  /// Paged batches (`more`/`continued`) are applied incrementally: a full
  /// reload clears only on the first page, and a complete enumeration's
  /// mentioned set accumulates across pages so unmentioned entries are
  /// dropped only once the final page arrived. A non-continued batch
  /// supersedes any unfinished paged one (aborted pagination).
  void apply(const UpdateBatch& batch);

  bool contains(const ldap::Dn& dn) const;
  ldap::EntryPtr find(const ldap::Dn& dn) const;
  std::size_t size() const noexcept { return entries_.size(); }

  /// Sorted normalized DN keys (for convergence comparison).
  std::vector<std::string> keys() const;

  std::vector<ldap::EntryPtr> entries() const;

  /// Total approximate bytes stored.
  std::size_t bytes(std::size_t entry_padding = 0) const;

  /// Digest tree over the stored entries, maintained incrementally by
  /// apply(). A recovering client offers its root/bucket digests to the
  /// master instead of accepting a full reload (DESIGN.md §12).
  const ContentDigest& digest() const noexcept { return digest_; }

  /// Fingerprints of the stored entries whose DN keys fall in `buckets`
  /// (the round-2 payload of a reconciliation walk).
  std::vector<EntryFingerprint> fingerprints_for(
      const std::vector<std::uint32_t>& buckets) const;

  void clear() {
    entries_.clear();
    enum_mentioned_.clear();
    enum_pending_ = false;
    digest_.clear();
  }

 private:
  std::map<std::string, ldap::EntryPtr> entries_;
  ContentDigest digest_;
  /// DNs mentioned so far by an in-flight paged complete enumeration.
  std::set<std::string> enum_mentioned_;
  bool enum_pending_ = false;
};

}  // namespace fbdr::sync
