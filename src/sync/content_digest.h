#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "ldap/entry.h"

namespace fbdr::sync {

/// Digest of one DN-hash bucket: the commutative fold of the entry hashes
/// whose normalized DN keys land in the bucket, plus the entry count. Two
/// stores whose bucket digest and count agree hold (up to hash collision)
/// identical entries in that bucket.
struct BucketDigest {
  std::uint32_t bucket = 0;
  std::uint64_t digest = 0;
  std::uint64_t count = 0;
};

/// Per-entry fingerprint shipped during the round-2 bucket walk: the full DN
/// (so the peer can synthesize deletes) and the canonical entry hash.
struct EntryFingerprint {
  ldap::Dn dn;
  std::uint64_t hash = 0;
};

/// Incrementally maintained two-level digest tree over a content store
/// (master-side ContentTracker or replica-side ReplicaContent): a root
/// digest/count summarizing everything, and kBuckets bucket digests keyed by
/// the top bits of the DN-key hash. Entry hashes cover (DN, normalized
/// attrs); bucket digests fold them with a keyed mix under addition mod
/// 2^64, so upsert/erase are O(log n) and never require a rescan.
///
/// Reconciliation (DESIGN.md §12) compares roots, then bucket digests, then
/// per-entry fingerprints of the mismatched buckets — recovery work
/// proportional to the symmetric difference instead of the content size.
class ContentDigest {
 public:
  static constexpr std::uint32_t kBuckets = 256;

  /// FNV-1a 64 over an arbitrary string.
  static std::uint64_t hash_key(const std::string& key);

  /// Canonical entry hash over the normalized DN key plus every attribute
  /// name and value in stored (sorted, lowercased-name) order.
  static std::uint64_t hash_entry(const ldap::Entry& entry);

  /// Bucket index of a normalized DN key (top 8 bits of its key hash).
  static std::uint32_t bucket_of(const std::string& key);

  void upsert(const std::string& key, const ldap::Entry& entry);
  void erase(const std::string& key);
  void clear();

  std::uint64_t root() const noexcept { return root_; }
  std::uint64_t entry_count() const noexcept { return hashes_.size(); }

  /// Non-empty buckets only (the sparse wire form of round 1).
  std::vector<BucketDigest> bucket_digests() const;

  /// Stored entry hash for a key; 0 when the key is absent.
  std::uint64_t hash_of(const std::string& key) const;

 private:
  struct Bucket {
    std::uint64_t digest = 0;
    std::uint64_t count = 0;
  };

  /// Keyed contribution of one (key, entry-hash) pair to its bucket digest.
  static std::uint64_t contribution(std::uint64_t key_hash,
                                    std::uint64_t entry_hash);

  void subtract(const std::string& key, std::uint64_t entry_hash);

  std::vector<Bucket> buckets_ = std::vector<Bucket>(kBuckets);
  std::map<std::string, std::uint64_t> hashes_;  // key -> entry hash
  std::uint64_t root_ = 0;
};

}  // namespace fbdr::sync
