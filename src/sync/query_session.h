#pragma once

#include <map>
#include <memory>
#include <vector>

#include "server/dit.h"
#include "sync/content_tracker.h"
#include "sync/update_batch.h"

namespace fbdr::sync {

/// The per-replicated-query synchronization state a ReSync master keeps for
/// one session: the content tracker, the pending events since the last poll
/// (the session history) and the replica's last acknowledged view.
///
/// Complete-history polls compact pending events into the minimal update set
/// of equation (2); incomplete-history polls fall back to the retain-based
/// complete enumeration of equation (3).
class QuerySession {
 public:
  explicit QuerySession(ldap::Query query,
                        const ldap::Schema& schema = ldap::Schema::default_instance());

  const ldap::Query& query() const { return tracker_.query(); }
  const ContentTracker& tracker() const { return tracker_; }
  bool initialized() const noexcept { return initialized_; }

  /// Full initial content (clears history).
  UpdateBatch initial(const server::Dit& dit);

  /// Feeds one journaled master change into the session history. Returns the
  /// content events the change produced (the master's ChangeRouter mirrors
  /// its holder index from them). `cache` (optional) shares entry-side
  /// normalized values across sessions evaluating the same change.
  std::vector<ContentEvent> on_change(const server::ChangeRecord& record,
                                      ldap::NormalizedValueCache* cache = nullptr);

  /// Minimal updates since the last poll (equation (2)); requires the
  /// session history fed via on_change.
  UpdateBatch poll();

  /// Retain-based updates (equation (3)): changed in-content entries as
  /// add/mod plus retain DNs for unchanged ones; the replica drops anything
  /// unmentioned. Used when the server keeps no per-session leave history.
  UpdateBatch poll_with_retains();

  /// Pending (unpolled) events — the history size the master holds.
  std::size_t pending_events() const noexcept { return pending_.size(); }

  /// Forwards to ContentTracker::set_legacy_eval (benchmark baseline only).
  void set_legacy_eval(bool legacy) { tracker_.set_legacy_eval(legacy); }

 private:
  ContentTracker tracker_;
  std::vector<ContentEvent> pending_;
  std::map<std::string, ldap::Dn> acked_;  // replica's last known DNs
  bool initialized_ = false;
};

}  // namespace fbdr::sync
