#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "server/dit.h"
#include "sync/content_tracker.h"
#include "sync/update_batch.h"

namespace fbdr::sync {

/// The per-replicated-query synchronization state a ReSync master keeps for
/// one session: the content tracker, the pending events since the last poll
/// (the session history) and the replica's last acknowledged view.
///
/// Complete-history polls compact pending events into the minimal update set
/// of equation (2); incomplete-history polls fall back to the retain-based
/// complete enumeration of equation (3).
class QuerySession {
 public:
  explicit QuerySession(ldap::Query query,
                        const ldap::Schema& schema = ldap::Schema::default_instance());

  const ldap::Query& query() const { return tracker_.query(); }
  const ContentTracker& tracker() const { return tracker_; }
  bool initialized() const noexcept { return initialized_; }

  /// Full initial content (clears history).
  UpdateBatch initial(const server::Dit& dit);

  /// Initializes the tracker and clears history WITHOUT building the initial
  /// batch or acking anything. Used for provisional sessions created while a
  /// reconciliation walk decides what (if anything) the replica needs.
  void prepare(const server::Dit& dit);

  /// Marks the entire current content as acknowledged by the replica. Called
  /// when a reconciliation walk proves the replica already holds the exact
  /// content (in-sync short-circuit).
  void ack_content();

  /// The entire current content as a full-reload batch; acks everything.
  /// Used when a reconciliation walk falls back to shipping it all.
  UpdateBatch full_content_batch();

  /// Reconciliation round 2: given the replica's fingerprints for the
  /// divergent `buckets`, builds the exact diff — content entries missing or
  /// mismatched replica-side ship as adds, fingerprinted entries absent from
  /// the content ship as deletes. Acks the full content afterwards so the
  /// session continues with complete-history polls (DESIGN.md §12).
  UpdateBatch diff_batch(const std::vector<EntryFingerprint>& fingerprints,
                         const std::vector<std::uint32_t>& buckets);

  /// Feeds one journaled master change into the session history. Returns the
  /// content events the change produced (the master's ChangeRouter mirrors
  /// its holder index from them). `cache` (optional) shares entry-side
  /// normalized values across sessions evaluating the same change.
  std::vector<ContentEvent> on_change(const server::ChangeRecord& record,
                                      ldap::NormalizedValueCache* cache = nullptr);

  /// Minimal updates since the last poll (equation (2)); requires the
  /// session history fed via on_change.
  UpdateBatch poll();

  /// Retain-based updates (equation (3)): changed in-content entries as
  /// add/mod plus retain DNs for unchanged ones; the replica drops anything
  /// unmentioned. Used when the server keeps no per-session leave history.
  /// Answering heals a degraded session back to complete-history tracking
  /// (the enumeration re-established the replica's exact view).
  UpdateBatch poll_with_retains();

  /// Drops the event history under resource pressure, keeping only the
  /// compact set of touched DN keys (no entry bodies, no per-event records).
  /// The next poll must use poll_with_retains(): touched keys ship as mods,
  /// unchanged content as retains, so the replica stays exact even though
  /// the leave history is gone (equation (3) degradation).
  void degrade();
  bool degraded() const noexcept { return degraded_; }

  /// Second-stage degradation: even the touched-key set is dropped; the next
  /// poll_with_retains() ships every content entry in full (no retains).
  /// Session history cost becomes zero at the price of one full enumeration.
  void collapse_history();
  bool history_collapsed() const noexcept { return full_bodies_; }

  /// Pending (unpolled) events — the history size the master holds.
  std::size_t pending_events() const noexcept { return pending_.size(); }

  /// History accounting units the governor budgets: pending events while
  /// complete, touched keys while degraded, zero once collapsed.
  std::size_t history_units() const noexcept {
    return pending_.size() + touched_.size();
  }

  /// The entire current content as one complete enumeration with full bodies
  /// (adds only). Touches no session state — used to answer a duplicated
  /// poll whose cached response had its entry bodies stripped: applying it
  /// converges the replica whether or not the original response was applied.
  UpdateBatch snapshot_enumeration() const;

  /// Re-anchors the session after journal compaction left a gap it cannot
  /// replay: recomputes the content from the DIT and synthesizes the
  /// Enter/Update/Leave events for every difference, feeding them through
  /// the normal history path. Returns the events so the master can re-mirror
  /// its routing index.
  std::vector<ContentEvent> rebase(const server::Dit& dit);

  /// Forwards to ContentTracker::set_legacy_eval (benchmark baseline only).
  void set_legacy_eval(bool legacy) { tracker_.set_legacy_eval(legacy); }

 private:
  void note_events(const std::vector<ContentEvent>& events);

  ContentTracker tracker_;
  std::vector<ContentEvent> pending_;
  std::set<std::string> touched_;  // degraded history: touched DN keys only
  std::map<std::string, ldap::Dn> acked_;  // replica's last known DNs
  bool initialized_ = false;
  bool degraded_ = false;
  bool full_bodies_ = false;  // collapsed: next eq(3) poll ships everything
};

}  // namespace fbdr::sync
