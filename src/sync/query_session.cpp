#include "sync/query_session.h"

#include <set>

#include "ldap/error.h"

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;

QuerySession::QuerySession(ldap::Query query, const ldap::Schema& schema)
    : tracker_(std::move(query), schema) {}

UpdateBatch QuerySession::initial(const server::Dit& dit) {
  tracker_.initialize(dit);
  pending_.clear();
  touched_.clear();
  degraded_ = false;
  full_bodies_ = false;
  acked_.clear();
  UpdateBatch batch;
  batch.full_reload = true;
  dit.for_each([&](const EntryPtr& entry) {
    if (tracker_.matches_query(*entry)) {
      batch.adds.push_back(entry);
      acked_.emplace(entry->dn().norm_key(), entry->dn());
    }
  });
  initialized_ = true;
  return batch;
}

void QuerySession::prepare(const server::Dit& dit) {
  tracker_.initialize(dit);
  pending_.clear();
  touched_.clear();
  acked_.clear();
  degraded_ = false;
  full_bodies_ = false;
  initialized_ = true;
}

void QuerySession::ack_content() {
  acked_.clear();
  for (const auto& [key, entry] : tracker_.content()) {
    acked_.emplace(key, entry->dn());
  }
}

UpdateBatch QuerySession::full_content_batch() {
  UpdateBatch batch;
  batch.full_reload = true;
  for (const auto& [key, entry] : tracker_.content()) {
    batch.adds.push_back(entry);
  }
  ack_content();
  return batch;
}

UpdateBatch QuerySession::diff_batch(
    const std::vector<EntryFingerprint>& fingerprints,
    const std::vector<std::uint32_t>& buckets) {
  std::set<std::uint32_t> wanted(buckets.begin(), buckets.end());
  std::map<std::string, const EntryFingerprint*> offered;
  for (const EntryFingerprint& fp : fingerprints) {
    offered[fp.dn.norm_key()] = &fp;
  }
  UpdateBatch batch;
  for (const auto& [key, entry] : tracker_.content()) {
    if (wanted.count(ContentDigest::bucket_of(key)) == 0) continue;
    const auto it = offered.find(key);
    if (it != offered.end() &&
        it->second->hash == tracker_.digest().hash_of(key)) {
      offered.erase(it);  // identical on both sides
      continue;
    }
    batch.adds.push_back(entry);  // missing or mismatched replica-side
    if (it != offered.end()) offered.erase(it);
  }
  for (const auto& [key, fp] : offered) {
    batch.deletes.push_back(fp->dn);  // replica holds it, content does not
  }
  ack_content();
  return batch;
}

std::vector<ContentEvent> QuerySession::on_change(
    const server::ChangeRecord& record, ldap::NormalizedValueCache* cache) {
  std::vector<ContentEvent> events = tracker_.on_change(record, cache);
  note_events(events);
  return events;
}

void QuerySession::note_events(const std::vector<ContentEvent>& events) {
  if (full_bodies_) return;  // collapsed: the next poll enumerates everything
  if (degraded_) {
    for (const ContentEvent& event : events) {
      touched_.insert(event.dn.norm_key());
    }
    return;
  }
  pending_.insert(pending_.end(), events.begin(), events.end());
}

void QuerySession::degrade() {
  if (degraded_) return;
  degraded_ = true;
  for (const ContentEvent& event : pending_) {
    touched_.insert(event.dn.norm_key());
  }
  pending_.clear();
  pending_.shrink_to_fit();
}

void QuerySession::collapse_history() {
  degraded_ = true;
  full_bodies_ = true;
  pending_.clear();
  pending_.shrink_to_fit();
  touched_.clear();
}

UpdateBatch QuerySession::poll() {
  if (!initialized_) {
    throw ldap::ProtocolError("poll() before initial()");
  }
  // A degraded session has no event history to compact — only the retain
  // path can answer it exactly.
  if (degraded_) return poll_with_retains();
  // Compact pending events per DN: the final state decides the action.
  struct Final {
    bool in_content = false;
    EntryPtr entry;
    Dn dn;
  };
  std::map<std::string, Final> finals;
  for (const ContentEvent& event : pending_) {
    Final& f = finals[event.dn.norm_key()];
    f.dn = event.dn;
    f.in_content = event.transition != Transition::Leave;
    f.entry = event.entry;
  }
  pending_.clear();

  UpdateBatch batch;
  for (const auto& [key, f] : finals) {
    const bool known = acked_.count(key) > 0;
    if (f.in_content) {
      if (known) {
        batch.mods.push_back(f.entry);
      } else {
        batch.adds.push_back(f.entry);
        acked_.emplace(key, f.dn);
      }
    } else if (known) {
      batch.deletes.push_back(f.dn);
      acked_.erase(key);
    }
    // entered and left between polls: nothing to send.
  }
  return batch;
}

UpdateBatch QuerySession::poll_with_retains() {
  if (!initialized_) {
    throw ldap::ProtocolError("poll_with_retains() before initial()");
  }
  // Equation (3): enumerate the entire current content. Entries touched by a
  // pending event (or recorded in the degraded touched set) are shipped in
  // full; the rest are retained by DN — unless the history collapsed
  // entirely, in which case every entry ships in full.
  std::set<std::string> touched = std::move(touched_);
  touched_.clear();
  for (const ContentEvent& event : pending_) {
    touched.insert(event.dn.norm_key());
  }
  pending_.clear();

  UpdateBatch batch;
  batch.complete_enumeration = true;
  std::map<std::string, Dn> new_acked;
  for (const auto& [key, entry] : tracker_.content()) {
    const bool known = acked_.count(key) > 0;
    if (!known) {
      batch.adds.push_back(entry);  // E01
    } else if (full_bodies_ || touched.count(key) > 0) {
      batch.mods.push_back(entry);  // E11 (or unknown-change under collapse)
    } else {
      batch.retains.push_back(entry->dn());  // Eun
    }
    new_acked.emplace(key, entry->dn());
  }
  acked_ = std::move(new_acked);
  // The enumeration re-established the replica's exact view: the session can
  // resume complete-history tracking (heal).
  degraded_ = false;
  full_bodies_ = false;
  return batch;
}

UpdateBatch QuerySession::snapshot_enumeration() const {
  UpdateBatch batch;
  batch.complete_enumeration = true;
  for (const auto& [key, entry] : tracker_.content()) {
    batch.adds.push_back(entry);  // upserted replica-side whether known or not
  }
  return batch;
}

std::vector<ContentEvent> QuerySession::rebase(const server::Dit& dit) {
  if (!initialized_) return {};
  std::map<std::string, ldap::EntryPtr> old_content = tracker_.content();
  tracker_.initialize(dit);

  std::vector<ContentEvent> events;
  for (const auto& [key, entry] : tracker_.content()) {
    auto it = old_content.find(key);
    if (it == old_content.end()) {
      events.push_back({0, Transition::Enter, entry->dn(), entry});
    } else {
      if (!(*it->second == *entry)) {
        events.push_back({0, Transition::Update, entry->dn(), entry});
      }
      old_content.erase(it);
    }
  }
  for (const auto& [key, entry] : old_content) {
    events.push_back({0, Transition::Leave, entry->dn(), nullptr});
  }
  note_events(events);
  return events;
}

}  // namespace fbdr::sync
