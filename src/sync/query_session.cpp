#include "sync/query_session.h"

#include <set>

#include "ldap/error.h"

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;

QuerySession::QuerySession(ldap::Query query, const ldap::Schema& schema)
    : tracker_(std::move(query), schema) {}

UpdateBatch QuerySession::initial(const server::Dit& dit) {
  tracker_.initialize(dit);
  pending_.clear();
  acked_.clear();
  UpdateBatch batch;
  batch.full_reload = true;
  dit.for_each([&](const EntryPtr& entry) {
    if (tracker_.matches_query(*entry)) {
      batch.adds.push_back(entry);
      acked_.emplace(entry->dn().norm_key(), entry->dn());
    }
  });
  initialized_ = true;
  return batch;
}

std::vector<ContentEvent> QuerySession::on_change(
    const server::ChangeRecord& record, ldap::NormalizedValueCache* cache) {
  std::vector<ContentEvent> events = tracker_.on_change(record, cache);
  pending_.insert(pending_.end(), events.begin(), events.end());
  return events;
}

UpdateBatch QuerySession::poll() {
  if (!initialized_) {
    throw ldap::ProtocolError("poll() before initial()");
  }
  // Compact pending events per DN: the final state decides the action.
  struct Final {
    bool in_content = false;
    EntryPtr entry;
    Dn dn;
  };
  std::map<std::string, Final> finals;
  for (const ContentEvent& event : pending_) {
    Final& f = finals[event.dn.norm_key()];
    f.dn = event.dn;
    f.in_content = event.transition != Transition::Leave;
    f.entry = event.entry;
  }
  pending_.clear();

  UpdateBatch batch;
  for (const auto& [key, f] : finals) {
    const bool known = acked_.count(key) > 0;
    if (f.in_content) {
      if (known) {
        batch.mods.push_back(f.entry);
      } else {
        batch.adds.push_back(f.entry);
        acked_.emplace(key, f.dn);
      }
    } else if (known) {
      batch.deletes.push_back(f.dn);
      acked_.erase(key);
    }
    // entered and left between polls: nothing to send.
  }
  return batch;
}

UpdateBatch QuerySession::poll_with_retains() {
  if (!initialized_) {
    throw ldap::ProtocolError("poll_with_retains() before initial()");
  }
  // Equation (3): enumerate the entire current content. Entries touched by a
  // pending event are shipped in full; the rest are retained by DN.
  std::set<std::string> touched;
  for (const ContentEvent& event : pending_) {
    touched.insert(event.dn.norm_key());
  }
  pending_.clear();

  UpdateBatch batch;
  batch.complete_enumeration = true;
  std::map<std::string, Dn> new_acked;
  for (const auto& [key, entry] : tracker_.content()) {
    const bool known = acked_.count(key) > 0;
    if (!known) {
      batch.adds.push_back(entry);  // E01
    } else if (touched.count(key) > 0) {
      batch.mods.push_back(entry);  // E11
    } else {
      batch.retains.push_back(entry->dn());  // Eun
    }
    new_acked.emplace(key, entry->dn());
  }
  acked_ = std::move(new_acked);
  return batch;
}

}  // namespace fbdr::sync
