#include "sync/content_tracker.h"

#include "ldap/filter_eval.h"

namespace fbdr::sync {

using ldap::Dn;
using ldap::Entry;
using ldap::EntryPtr;
using ldap::Scope;
using server::ChangeRecord;
using server::ChangeType;

std::string to_string(Transition transition) {
  switch (transition) {
    case Transition::Enter:
      return "enter";
    case Transition::Leave:
      return "leave";
    case Transition::Update:
      return "update";
  }
  return "unknown";
}

ContentTracker::ContentTracker(ldap::Query query, const ldap::Schema& schema)
    : query_(std::move(query)),
      schema_(&schema),
      ir_(ldap::FilterInterner::for_schema(schema).intern(query_.filter)),
      compiled_(ldap::CompiledFilter::compile(
          ir_, ldap::FilterInterner::for_schema(schema))) {}

bool ContentTracker::in_region(const Dn& dn) const {
  switch (query_.scope) {
    case Scope::Base:
      return dn == query_.base;
    case Scope::OneLevel:
      return query_.base.is_parent_of(dn);
    case Scope::Subtree:
      return query_.base.is_ancestor_or_self(dn);
  }
  return false;
}

bool ContentTracker::matches_query(const Entry& entry) const {
  if (!in_region(entry.dn())) return false;
  if (legacy_eval_) {
    return !query_.filter || ldap::matches(*query_.filter, entry, *schema_);
  }
  return compiled_.matches(entry);
}

bool ContentTracker::matches_query(const EntryPtr& entry,
                                   ldap::NormalizedValueCache* cache) const {
  if (!in_region(entry->dn())) return false;
  if (legacy_eval_) {
    return !query_.filter || ldap::matches(*query_.filter, *entry, *schema_);
  }
  return compiled_.matches(entry, cache);
}

void ContentTracker::initialize(const server::Dit& dit) {
  content_.clear();
  digest_.clear();
  dit.for_each([&](const EntryPtr& entry) {
    if (matches_query(*entry)) {
      const std::string key = entry->dn().norm_key();
      content_[key] = entry;
      digest_.upsert(key, *entry);
    }
  });
}

bool ContentTracker::in_content(const Dn& dn) const {
  return content_.count(dn.norm_key()) > 0;
}

std::vector<std::string> ContentTracker::content_keys() const {
  std::vector<std::string> keys;
  keys.reserve(content_.size());
  for (const auto& [key, entry] : content_) keys.push_back(key);
  return keys;
}

std::vector<ContentEvent> ContentTracker::on_change(
    const ChangeRecord& record, ldap::NormalizedValueCache* cache) {
  std::vector<ContentEvent> events;
  switch (record.type) {
    case ChangeType::Add: {
      if (record.after && matches_query(record.after, cache)) {
        const std::string key = record.dn.norm_key();
        content_[key] = record.after;
        digest_.upsert(key, *record.after);
        events.push_back({record.seq, Transition::Enter, record.dn, record.after});
      }
      break;
    }
    case ChangeType::Delete: {
      const std::string key = record.dn.norm_key();
      if (content_.erase(key) > 0) {
        digest_.erase(key);
        events.push_back({record.seq, Transition::Leave, record.dn, nullptr});
      }
      break;
    }
    case ChangeType::Modify: {
      const bool was_in = in_content(record.dn);
      const bool now_in = record.after && matches_query(record.after, cache);
      const std::string key = record.dn.norm_key();
      if (was_in && now_in) {
        content_[key] = record.after;
        digest_.upsert(key, *record.after);
        events.push_back({record.seq, Transition::Update, record.dn, record.after});
      } else if (was_in && !now_in) {
        content_.erase(key);
        digest_.erase(key);
        events.push_back({record.seq, Transition::Leave, record.dn, nullptr});
      } else if (!was_in && now_in) {
        content_[key] = record.after;
        digest_.upsert(key, *record.after);
        events.push_back({record.seq, Transition::Enter, record.dn, record.after});
      }
      break;
    }
    case ChangeType::ModifyDn: {
      const bool was_in = in_content(record.dn);
      const bool now_in = record.after && matches_query(record.after, cache);
      if (was_in) {
        const std::string key = record.dn.norm_key();
        content_.erase(key);
        digest_.erase(key);
        events.push_back({record.seq, Transition::Leave, record.dn, nullptr});
      }
      if (now_in) {
        const std::string key = record.new_dn.norm_key();
        content_[key] = record.after;
        digest_.upsert(key, *record.after);
        events.push_back(
            {record.seq, Transition::Enter, record.new_dn, record.after});
      }
      break;
    }
  }
  return events;
}

}  // namespace fbdr::sync
