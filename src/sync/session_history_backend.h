#pragma once

#include <memory>
#include <vector>

#include "server/dit.h"
#include "sync/backend.h"
#include "sync/query_session.h"

namespace fbdr::sync {

/// The ReSync computation (§5.2) behind the SyncBackend interface: the master
/// keeps, per replicated query, a content tracker plus the session history —
/// the events accumulated since the replica's last poll. Each poll returns
/// the minimal update set of equation (2). See QuerySession for the
/// compaction rules.
class SessionHistoryBackend : public SyncBackend {
 public:
  explicit SessionHistoryBackend(
      const server::Dit& master_dit,
      const ldap::Schema& schema = ldap::Schema::default_instance());

  std::size_t register_query(const ldap::Query& query) override;
  UpdateBatch initial(std::size_t id) override;
  UpdateBatch poll(std::size_t id) override;
  void on_change(const server::ChangeRecord& record) override;
  std::string name() const override { return "session-history"; }

  /// Entries currently tracked for a query (the master-side content view).
  const ContentTracker& tracker(std::size_t id) const;

  /// Number of pending (unpolled) events across all queries — the "size of
  /// historical data" the protocol must maintain.
  std::size_t pending_events() const;

  /// Drops a replicated query (sync_end).
  void unregister_query(std::size_t id);

 private:
  struct Slot {
    std::unique_ptr<QuerySession> session;
    bool active = true;
  };

  const server::Dit* dit_;
  const ldap::Schema* schema_;
  std::vector<Slot> slots_;
};

}  // namespace fbdr::sync
