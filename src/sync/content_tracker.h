#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ldap/compiled_filter.h"
#include "ldap/entry.h"
#include "ldap/filter_ir.h"
#include "ldap/query.h"
#include "ldap/schema.h"
#include "server/change.h"
#include "server/dit.h"
#include "sync/content_digest.h"

namespace fbdr::sync {

/// Content-membership transition of one entry caused by one update (§5.1).
enum class Transition {
  Enter,   // E01: entry moved into the content
  Leave,   // E10: entry moved out of the content
  Update,  // E11: entry changed but stayed inside
};

std::string to_string(Transition transition);

/// One classified event on a replicated query's content.
struct ContentEvent {
  std::uint64_t seq = 0;
  Transition transition = Transition::Enter;
  ldap::Dn dn;            // the content DN affected (new DN for rename-enters)
  ldap::EntryPtr entry;   // current snapshot for Enter/Update, null for Leave
};

/// Tracks the content C_S(t) of one replicated query S at the master and
/// classifies every journaled change into the transitions of equation (2).
/// A modify DN of an in-content entry that stays in content is reported as a
/// Leave of the old DN plus an Enter of the new DN, exactly as the Figure 3
/// session shows for E3 -> E5.
///
/// Concurrency contract (sharded pump, DESIGN.md §13): a tracker belongs to
/// exactly one session and is only driven by the session's owning shard
/// worker — on_change() mutates the tracked content and is never called
/// concurrently on one tracker. Its shared inputs are safe by immutability:
/// ChangeRecord snapshots, EntryPtr bodies, the Schema and the compiled
/// filter are all read-only during a pump, and the optional
/// NormalizedValueCache passed in is the shard's own.
class ContentTracker {
 public:
  explicit ContentTracker(ldap::Query query,
                          const ldap::Schema& schema = ldap::Schema::default_instance());

  const ldap::Query& query() const noexcept { return query_; }

  /// (Re)computes the content from the master DIT.
  void initialize(const server::Dit& dit);

  /// Classifies one change; updates the tracked content; returns the events
  /// (0, 1, or 2 — a rename can produce Leave+Enter). `cache` (optional)
  /// shares entry-side normalized values across trackers evaluating the
  /// same change.
  std::vector<ContentEvent> on_change(const server::ChangeRecord& record,
                                      ldap::NormalizedValueCache* cache = nullptr);

  bool in_content(const ldap::Dn& dn) const;
  std::size_t content_size() const noexcept { return content_.size(); }

  /// Current content DNs (normalized keys, sorted).
  std::vector<std::string> content_keys() const;

  /// Current content snapshots keyed by normalized DN.
  const std::map<std::string, ldap::EntryPtr>& content() const noexcept {
    return content_;
  }

  /// Digest tree over the tracked content, maintained incrementally at every
  /// membership mutation. The master compares it against a recovering
  /// replica's offered digests to ship only the divergent entries
  /// (DESIGN.md §12).
  const ContentDigest& digest() const noexcept { return digest_; }

  /// True when `entry` satisfies the query (region + filter).
  bool matches_query(const ldap::Entry& entry) const;

  /// Cache-assisted variant used by the master's pump hot path.
  bool matches_query(const ldap::EntryPtr& entry,
                     ldap::NormalizedValueCache* cache) const;

  /// The filter compiled once at construction; the ChangeRouter indexes
  /// sessions by its referenced attribute ids and equality pins.
  const ldap::CompiledFilter& compiled_filter() const noexcept {
    return compiled_;
  }

  /// The query filter's canonical IR, interned once at construction (null
  /// for a filterless query). Shared with the compiled program.
  const ldap::FilterIrPtr& ir() const noexcept { return ir_; }

  /// Evaluate via the original AST walker instead of the compiled program.
  /// Exists so benchmarks can measure the pre-compilation cost; results are
  /// identical (see tests/routing_equivalence_test.cpp).
  void set_legacy_eval(bool legacy) { legacy_eval_ = legacy; }

 private:
  bool in_region(const ldap::Dn& dn) const;

  ldap::Query query_;
  const ldap::Schema* schema_;
  ldap::FilterIrPtr ir_;
  ldap::CompiledFilter compiled_;
  bool legacy_eval_ = false;
  std::map<std::string, ldap::EntryPtr> content_;  // norm key -> snapshot
  ContentDigest digest_;
};

}  // namespace fbdr::sync
