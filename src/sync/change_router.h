#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ldap/compiled_filter.h"
#include "ldap/filter_ir.h"
#include "ldap/query.h"
#include "server/change.h"

namespace fbdr::sync {

/// Attribute-indexed predicate routing for the ReSync master's hot path
/// (cf. Le Subscribe / Fabret et al., SIGMOD 2001): instead of walking every
/// journaled change through every session's filter, the router computes the
/// (usually tiny) candidate set of sessions a change can possibly affect.
/// Candidates are the union of:
///
///  - **holders**: sessions whose tracked content contains the changed DN —
///    they must always process the change (Update/Leave), regardless of
///    which attributes moved. The router mirrors each session's content
///    membership via note_enter/note_leave, driven by the tracker's own
///    ContentEvents, so this index is exact.
///  - **attribute buckets** (Modify only): sessions whose filter references
///    an attribute whose values actually changed between the before/after
///    snapshots. A non-holder can only *enter* a content when its filter's
///    verdict flips, and the verdict only depends on referenced attributes,
///    so a modify touching only telephoneNumber never wakes a dept filter.
///  - **equality-pin buckets** (Add / ModifyDn enter): sessions whose
///    top-level AND pins (attr=value) are looked up by the new entry's
///    normalized values — an add with dept=42 never wakes (dept=17).
///  - **region buckets**: sessions *without* an equality pin are indexed by
///    their scope-region base key (subtree bases prune by DN ancestry, one-
///    level by parent key, base by exact key), so an add only fans out to
///    the regions it lands in.
///  - **fallback**: sessions whose filter the router cannot index (no
///    compiled filter supplied) are candidates for every entering change,
///    pruned only by region. Deletes route through holders alone for every
///    class — content membership is the ground truth of the prior verdict.
///
/// Every emitted candidate is verified against the session's region and
/// pins before being returned, so the candidate set is a superset of the
/// affected set and routed evaluation is equivalent to exhaustive
/// evaluation (see tests/routing_equivalence_test.cpp).
///
/// Concurrency: a router is confined to one shard (one pump worker at a
/// time) — route() mutates the dedup generation stamps and the stats
/// counters, so it is not const and not shareable. Because a session's
/// candidacy for a record depends only on that session's own index entries,
/// running one router per session shard emits exactly the candidates the
/// global router would (ReSyncMaster shards on this property; DESIGN.md
/// §13). The schema and interner the router reads are shared but append-only
/// /immutable during pump.
class ChangeRouter {
 public:
  using Handle = std::size_t;
  static constexpr Handle kInvalidHandle = static_cast<Handle>(-1);

  explicit ChangeRouter(
      const ldap::Schema& schema = ldap::Schema::default_instance())
      : schema_(&schema),
        interner_(&ldap::FilterInterner::for_schema(schema)) {}

  /// Registers a session. `compiled` supplies the referenced attribute ids
  /// and equality pins; it must outlive the registration (the master's
  /// ContentTracker owns it). Pass nullptr for an unindexable session
  /// (routed via the region fallback on every entering change). A compiled
  /// filter whose attribute-id space comes from a different interner than
  /// the router's schema also degrades to the fallback class — its ids
  /// would not be comparable with the router's buckets.
  Handle add_session(const ldap::Query& query,
                     const ldap::CompiledFilter* compiled);

  /// Unregisters a session from the static indexes. Holder entries must be
  /// released first via note_leave (the master walks the tracker's content).
  void remove_session(Handle handle);

  void clear();

  /// Content-membership mirror, driven by the tracker's ContentEvents.
  void note_enter(Handle handle, const std::string& norm_key);
  void note_leave(Handle handle, const std::string& norm_key);

  /// Appends the deduplicated candidate handles for `record` to `out`.
  /// `cache` (optional) memoizes the after-entry's normalized values for
  /// pin verification.
  void route(const server::ChangeRecord& record, std::vector<Handle>& out,
             ldap::NormalizedValueCache* cache = nullptr);

  std::size_t session_count() const noexcept { return live_count_; }
  std::size_t holder_keys() const noexcept { return holders_.size(); }

  struct Stats {
    std::uint64_t routed_changes = 0;
    std::uint64_t candidates = 0;   // candidate sessions emitted in total
    std::uint64_t exhaustive = 0;   // what a full fan-out would have cost
    std::uint64_t fallback_candidates = 0;  // emitted via the fallback class

    /// Folds another router's counters into this one. The sharded master
    /// runs one router per shard and reports the fold: candidates/exhaustive
    /// sum to the same totals a single global router would report, while
    /// routed_changes counts per-shard route() invocations (shards x
    /// records).
    void merge(const Stats& other) noexcept {
      routed_changes += other.routed_changes;
      candidates += other.candidates;
      exhaustive += other.exhaustive;
      fallback_candidates += other.fallback_candidates;
    }
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct SessionInfo {
    bool alive = false;
    bool fallback = false;  // unindexable: candidate for every entering change
    ldap::Dn base;
    ldap::Scope scope = ldap::Scope::Subtree;
    const ldap::CompiledFilter* compiled = nullptr;
    std::uint64_t stamp = 0;
  };

  bool region_covers(const SessionInfo& info, const ldap::Dn& dn) const;
  bool pins_satisfied(const SessionInfo& info, const ldap::EntryPtr& after,
                      ldap::NormalizedValueCache* cache) const;
  void emit(Handle handle, std::vector<Handle>& out, bool via_fallback = false);
  void add_holders(const std::string& norm_key, std::vector<Handle>& out);
  /// Candidates that may *enter* content at `dn` with snapshot `after`:
  /// region buckets for unpinned sessions, pin buckets for pinned ones.
  void add_enter_candidates(const ldap::Dn& dn, const ldap::EntryPtr& after,
                            std::vector<Handle>& out,
                            ldap::NormalizedValueCache* cache);
  static void bucket_insert(std::vector<Handle>& bucket, Handle handle);
  static void bucket_erase(std::vector<Handle>& bucket, Handle handle);

  const ldap::Schema* schema_;
  ldap::FilterInterner* interner_;
  std::vector<SessionInfo> sessions_;
  std::size_t live_count_ = 0;
  std::uint64_t generation_ = 0;

  /// norm DN key -> sessions holding the entry in content (exact mirror).
  std::unordered_map<std::string, std::vector<Handle>> holders_;
  /// referenced attribute id -> indexable sessions (Modify enter routing).
  /// Ids come from the router schema's interner; a Modify naming an
  /// attribute the interner has never seen cannot hit any bucket.
  std::unordered_map<ldap::AttrId, std::vector<Handle>> by_attr_;
  /// pin attr id -> pin value -> pinned sessions (Add/ModifyDn enter
  /// routing). Pin values are pre-normalized on the compiled filter.
  std::unordered_map<ldap::AttrId,
                     std::unordered_map<std::string, std::vector<Handle>>>
      by_pin_;
  /// base norm key -> unpinned sessions, per scope (enter routing).
  std::unordered_map<std::string, std::vector<Handle>> region_subtree_;
  std::unordered_map<std::string, std::vector<Handle>> region_onelevel_;
  std::unordered_map<std::string, std::vector<Handle>> region_base_;
  /// Unindexable sessions: region-checked candidates for every non-delete.
  std::vector<Handle> fallback_;

  Stats stats_;
};

}  // namespace fbdr::sync
