#include "sync/change_router.h"

#include <algorithm>

namespace fbdr::sync {

using ldap::Dn;
using ldap::EntryPtr;
using server::ChangeRecord;
using server::ChangeType;

ChangeRouter::Handle ChangeRouter::add_session(
    const ldap::Query& query, const ldap::CompiledFilter* compiled) {
  SessionInfo info;
  info.alive = true;
  // A compiled filter with a foreign attribute-id space (different schema
  // interner) is unindexable here: degrade to the fallback class rather
  // than compare incomparable ids.
  info.fallback = compiled == nullptr ||
                  compiled->attr_interner() != &interner_->attrs();
  info.base = query.base;
  info.scope = query.scope;
  info.compiled = compiled;

  Handle handle = sessions_.size();
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i].alive) {
      handle = i;
      break;
    }
  }
  if (handle == sessions_.size()) {
    sessions_.push_back(std::move(info));
  } else {
    sessions_[handle] = std::move(info);
  }
  ++live_count_;

  const SessionInfo& stored = sessions_[handle];
  if (stored.fallback) {
    fallback_.push_back(handle);
    return handle;
  }
  for (const ldap::AttrId attr : compiled->attr_ids()) {
    bucket_insert(by_attr_[attr], handle);
  }
  if (!compiled->eq_pins().empty()) {
    const ldap::CompiledFilter::EqPin& pin = compiled->eq_pins().front();
    bucket_insert(by_pin_[pin.attr_id][pin.norm_value], handle);
  } else {
    switch (stored.scope) {
      case ldap::Scope::Base:
        bucket_insert(region_base_[stored.base.norm_key()], handle);
        break;
      case ldap::Scope::OneLevel:
        bucket_insert(region_onelevel_[stored.base.norm_key()], handle);
        break;
      case ldap::Scope::Subtree:
        bucket_insert(region_subtree_[stored.base.norm_key()], handle);
        break;
    }
  }
  return handle;
}

void ChangeRouter::remove_session(Handle handle) {
  if (handle >= sessions_.size() || !sessions_[handle].alive) return;
  SessionInfo& info = sessions_[handle];
  if (info.fallback) {
    bucket_erase(fallback_, handle);
  } else {
    for (const ldap::AttrId attr : info.compiled->attr_ids()) {
      const auto it = by_attr_.find(attr);
      if (it != by_attr_.end()) {
        bucket_erase(it->second, handle);
        if (it->second.empty()) by_attr_.erase(it);
      }
    }
    if (!info.compiled->eq_pins().empty()) {
      const ldap::CompiledFilter::EqPin& pin = info.compiled->eq_pins().front();
      const auto attr_it = by_pin_.find(pin.attr_id);
      if (attr_it != by_pin_.end()) {
        const auto value_it = attr_it->second.find(pin.norm_value);
        if (value_it != attr_it->second.end()) {
          bucket_erase(value_it->second, handle);
          if (value_it->second.empty()) attr_it->second.erase(value_it);
        }
        if (attr_it->second.empty()) by_pin_.erase(attr_it);
      }
    } else {
      auto& region = info.scope == ldap::Scope::Base      ? region_base_
                     : info.scope == ldap::Scope::OneLevel ? region_onelevel_
                                                           : region_subtree_;
      const auto it = region.find(info.base.norm_key());
      if (it != region.end()) {
        bucket_erase(it->second, handle);
        if (it->second.empty()) region.erase(it);
      }
    }
  }
  info = SessionInfo{};
  --live_count_;
}

void ChangeRouter::clear() {
  sessions_.clear();
  live_count_ = 0;
  holders_.clear();
  by_attr_.clear();
  by_pin_.clear();
  region_subtree_.clear();
  region_onelevel_.clear();
  region_base_.clear();
  fallback_.clear();
}

void ChangeRouter::note_enter(Handle handle, const std::string& norm_key) {
  bucket_insert(holders_[norm_key], handle);
}

void ChangeRouter::note_leave(Handle handle, const std::string& norm_key) {
  const auto it = holders_.find(norm_key);
  if (it == holders_.end()) return;
  bucket_erase(it->second, handle);
  if (it->second.empty()) holders_.erase(it);
}

bool ChangeRouter::region_covers(const SessionInfo& info, const Dn& dn) const {
  switch (info.scope) {
    case ldap::Scope::Base:
      return info.base == dn;
    case ldap::Scope::OneLevel:
      return info.base.is_parent_of(dn);
    case ldap::Scope::Subtree:
      return info.base.is_ancestor_or_self(dn);
  }
  return false;
}

bool ChangeRouter::pins_satisfied(const SessionInfo& info,
                                  const EntryPtr& after,
                                  ldap::NormalizedValueCache* cache) const {
  if (!info.compiled || !after) return true;
  // Only indexed sessions reach this check, so the pins' attribute ids are
  // guaranteed to come from the router's interner.
  for (const ldap::CompiledFilter::EqPin& pin : info.compiled->eq_pins()) {
    bool found = false;
    if (cache) {
      const std::vector<std::string>& values =
          cache->get(after, pin.attr_id, interner_->attrs());
      found = std::find(values.begin(), values.end(), pin.norm_value) !=
              values.end();
    } else if (const std::vector<std::string>* raw = after->get(pin.attr)) {
      found = std::any_of(raw->begin(), raw->end(), [&](const std::string& v) {
        return schema_->normalize(pin.attr, v) == pin.norm_value;
      });
    }
    if (!found) return false;
  }
  return true;
}

void ChangeRouter::emit(Handle handle, std::vector<Handle>& out,
                        bool via_fallback) {
  SessionInfo& info = sessions_[handle];
  if (!info.alive || info.stamp == generation_) return;
  info.stamp = generation_;
  out.push_back(handle);
  if (via_fallback) ++stats_.fallback_candidates;
}

void ChangeRouter::add_holders(const std::string& norm_key,
                               std::vector<Handle>& out) {
  const auto it = holders_.find(norm_key);
  if (it == holders_.end()) return;
  for (Handle handle : it->second) emit(handle, out);
}

void ChangeRouter::add_enter_candidates(const Dn& dn, const EntryPtr& after,
                                        std::vector<Handle>& out,
                                        ldap::NormalizedValueCache* cache) {
  // Unpinned sessions, by region. Bucket membership already implies the
  // region covers `dn`, so no per-candidate recheck is needed here.
  if (!region_subtree_.empty()) {
    Dn ancestor = dn;
    while (true) {
      const auto it = region_subtree_.find(ancestor.norm_key());
      if (it != region_subtree_.end()) {
        for (Handle handle : it->second) emit(handle, out);
      }
      if (ancestor.is_root()) break;
      ancestor = ancestor.parent();
    }
  }
  if (!region_onelevel_.empty() && !dn.is_root()) {
    const auto it = region_onelevel_.find(dn.parent().norm_key());
    if (it != region_onelevel_.end()) {
      for (Handle handle : it->second) emit(handle, out);
    }
  }
  if (!region_base_.empty()) {
    const auto it = region_base_.find(dn.norm_key());
    if (it != region_base_.end()) {
      for (Handle handle : it->second) emit(handle, out);
    }
  }

  // Unindexable sessions: region is the only available pruner.
  for (Handle handle : fallback_) {
    const SessionInfo& info = sessions_[handle];
    if (!info.alive || info.stamp == generation_) continue;
    if (!region_covers(info, dn)) continue;
    emit(handle, out, true);
  }

  // Pinned sessions, by the new snapshot's values for each pinned attribute.
  if (!after) return;
  for (const auto& [attr_id, value_map] : by_pin_) {
    const std::vector<std::string>* values = nullptr;
    std::vector<std::string> scratch;
    const std::string& attr = interner_->attrs().name(attr_id);
    if (cache) {
      values = &cache->get(after, attr_id, interner_->attrs());
    } else if (const std::vector<std::string>* raw = after->get(attr)) {
      scratch.reserve(raw->size());
      for (const std::string& value : *raw) {
        scratch.push_back(schema_->normalize(attr, value));
      }
      values = &scratch;
    } else {
      continue;
    }
    for (const std::string& value : *values) {
      const auto it = value_map.find(value);
      if (it == value_map.end()) continue;
      for (Handle handle : it->second) {
        const SessionInfo& info = sessions_[handle];
        if (!info.alive || info.stamp == generation_) continue;
        if (!region_covers(info, dn)) continue;
        if (!pins_satisfied(info, after, cache)) continue;
        emit(handle, out);
      }
    }
  }
}

void ChangeRouter::route(const ChangeRecord& record, std::vector<Handle>& out,
                         ldap::NormalizedValueCache* cache) {
  ++generation_;
  ++stats_.routed_changes;
  stats_.exhaustive += live_count_;
  const std::size_t before_count = out.size();

  switch (record.type) {
    case ChangeType::Add:
      add_enter_candidates(record.dn, record.after, out, cache);
      break;
    case ChangeType::Delete:
      // Only sessions holding the entry can be affected; the holder index
      // mirrors content membership exactly.
      add_holders(record.dn.norm_key(), out);
      break;
    case ChangeType::Modify: {
      add_holders(record.dn.norm_key(), out);
      if (!record.before || !record.after) {
        // Malformed record: route conservatively to every session.
        for (Handle handle = 0; handle < sessions_.size(); ++handle) {
          emit(handle, out, true);
        }
        break;
      }
      // Non-holders can only enter when a referenced attribute changed and
      // the (unchanged) region covers the DN and every pin is satisfied.
      const auto& before_attrs = record.before->attributes();
      const auto& after_attrs = record.after->attributes();
      auto consider_attr = [&](const std::string& attr) {
        // find() does not insert: an attribute no tracked filter references
        // has no id, and provably hits no bucket.
        const std::optional<ldap::AttrId> id = interner_->attrs().find(attr);
        if (!id) return;
        const auto it = by_attr_.find(*id);
        if (it == by_attr_.end()) return;
        for (Handle handle : it->second) {
          const SessionInfo& info = sessions_[handle];
          if (!info.alive || info.stamp == generation_) continue;
          if (!region_covers(info, record.dn)) continue;
          if (!pins_satisfied(info, record.after, cache)) continue;
          emit(handle, out);
        }
      };
      auto b = before_attrs.begin();
      auto a = after_attrs.begin();
      while (b != before_attrs.end() || a != after_attrs.end()) {
        if (a == after_attrs.end() ||
            (b != before_attrs.end() && b->first < a->first)) {
          consider_attr(b->first);  // attribute removed
          ++b;
        } else if (b == before_attrs.end() || a->first < b->first) {
          consider_attr(a->first);  // attribute added
          ++a;
        } else {
          if (b->second != a->second) consider_attr(a->first);
          ++b;
          ++a;
        }
      }
      for (Handle handle : fallback_) {
        const SessionInfo& info = sessions_[handle];
        if (!info.alive || info.stamp == generation_) continue;
        if (!region_covers(info, record.dn)) continue;
        emit(handle, out, true);
      }
      break;
    }
    case ChangeType::ModifyDn:
      add_holders(record.dn.norm_key(), out);
      add_enter_candidates(record.new_dn, record.after, out, cache);
      break;
  }
  stats_.candidates += out.size() - before_count;
}

void ChangeRouter::bucket_insert(std::vector<Handle>& bucket, Handle handle) {
  bucket.push_back(handle);
}

void ChangeRouter::bucket_erase(std::vector<Handle>& bucket, Handle handle) {
  const auto it = std::find(bucket.begin(), bucket.end(), handle);
  if (it == bucket.end()) return;
  *it = bucket.back();
  bucket.pop_back();
}

}  // namespace fbdr::sync
