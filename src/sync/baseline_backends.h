#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "server/directory_server.h"
#include "sync/backend.h"
#include "sync/content_tracker.h"

namespace fbdr::sync {

/// Baseline: tombstone-driven synchronization (§5.2). Deleted entries leave
/// attribute-less tombstones, so the master cannot decide whether a deleted
/// entry was in a replicated query's content — *every* deleted DN since the
/// last poll is shipped to every replica ("requiring transmission of all
/// deleted entry DNs since the last update"). Adds/modifies are classified
/// against the current DIT.
class TombstoneBackend : public SyncBackend {
 public:
  explicit TombstoneBackend(
      const server::DirectoryServer& master,
      const ldap::Schema& schema = ldap::Schema::default_instance());

  std::size_t register_query(const ldap::Query& query) override;
  UpdateBatch initial(std::size_t id) override;
  UpdateBatch poll(std::size_t id) override;
  void on_change(const server::ChangeRecord& record) override;
  std::string name() const override { return "tombstone"; }

 private:
  struct State {
    std::unique_ptr<ContentTracker> tracker;
    std::uint64_t last_seq = 0;
    bool initialized = false;
  };

  const server::DirectoryServer* master_;
  const ldap::Schema* schema_;
  std::vector<State> states_;
};

/// Baseline: changelog-driven synchronization (§5.2). The changelog records
/// only the changed attributes, so (i) deletes cannot be classified — every
/// deleted DN is shipped, and (ii) a modify of a non-matching entry whose
/// changed attributes touch the filter may have moved the entry out of the
/// content — a conservative delete is shipped for it.
class ChangelogBackend : public SyncBackend {
 public:
  explicit ChangelogBackend(
      const server::DirectoryServer& master,
      const ldap::Schema& schema = ldap::Schema::default_instance());

  std::size_t register_query(const ldap::Query& query) override;
  UpdateBatch initial(std::size_t id) override;
  UpdateBatch poll(std::size_t id) override;
  void on_change(const server::ChangeRecord& record) override;
  std::string name() const override { return "changelog"; }

 private:
  struct State {
    std::unique_ptr<ContentTracker> tracker;  // used only for query matching
    std::uint64_t last_seq = 0;
    bool initialized = false;
  };

  const server::DirectoryServer* master_;
  const ldap::Schema* schema_;
  std::vector<State> states_;
};

/// Baseline: full reload — the whole content is retransmitted on every poll.
class FullReloadBackend : public SyncBackend {
 public:
  explicit FullReloadBackend(
      const server::DirectoryServer& master,
      const ldap::Schema& schema = ldap::Schema::default_instance());

  std::size_t register_query(const ldap::Query& query) override;
  UpdateBatch initial(std::size_t id) override;
  UpdateBatch poll(std::size_t id) override { return initial(id); }
  void on_change(const server::ChangeRecord&) override {}
  std::string name() const override { return "full-reload"; }

 private:
  const server::DirectoryServer* master_;
  const ldap::Schema* schema_;
  std::vector<ldap::Query> queries_;
};

}  // namespace fbdr::sync
