#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "containment/compiled.h"
#include "containment/filter_containment.h"
#include "containment/query_containment.h"
#include "ldap/query.h"
#include "ldap/query_template.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// The template-aware containment engine (paper §3.4.2). Dispatches each
/// containment check to the cheapest applicable decision procedure:
///
///   1. same template          -> Proposition 3: O(n) assertion-value
///                                comparisons,
///   2. distinct templates     -> Proposition 2: a CNF condition compiled
///                                once per ordered template pair, then
///                                evaluated in O(#atoms) comparisons,
///   3. non-compilable pair or -> Proposition 1: general DNF-based
///      unbound filters           inconsistency check.
///
/// The engine also enforces the template pruning rule: when both filters are
/// bound and no compiled condition can ever hold (trivially false), the
/// check costs nothing.
class ContainmentEngine {
 public:
  explicit ContainmentEngine(
      const ldap::Schema& schema = ldap::Schema::default_instance(),
      std::shared_ptr<ldap::TemplateRegistry> registry = nullptr);

  /// The registry used to bind filters (never null; an empty registry is
  /// created when none is supplied).
  ldap::TemplateRegistry& registry() noexcept { return *registry_; }
  const ldap::TemplateRegistry& registry() const noexcept { return *registry_; }

  /// Binds a filter against the registry (nullopt if no template matches).
  std::optional<ldap::BoundTemplate> bind(const ldap::Filter& filter) const;

  /// Filter-level containment with optional precomputed bindings.
  bool filter_contained(const ldap::Filter& inner,
                        const std::optional<ldap::BoundTemplate>& inner_binding,
                        const ldap::Filter& outer,
                        const std::optional<ldap::BoundTemplate>& outer_binding);

  /// Full query containment (paper QC): region, attribute subset, filter.
  bool query_contained(const ldap::Query& q,
                       const std::optional<ldap::BoundTemplate>& q_binding,
                       const ldap::Query& stored,
                       const std::optional<ldap::BoundTemplate>& stored_binding);

  /// Convenience overload binding both sides internally.
  bool query_contained(const ldap::Query& q, const ldap::Query& stored);

  /// Decision-procedure usage counters, for the §7.4 processing-overhead
  /// experiments.
  struct Stats {
    std::uint64_t checks = 0;            // containment checks performed
    std::uint64_t same_template = 0;     // resolved by Proposition 3
    std::uint64_t compiled = 0;          // resolved by a compiled condition
    std::uint64_t compiled_trivial = 0;  // compiled condition was constant
    std::uint64_t general = 0;           // fell back to Proposition 1
    std::uint64_t compilations = 0;      // template pairs compiled
  };
  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  const CompiledContainment* compiled_for(std::size_t inner_id,
                                          std::size_t outer_id);

  const ldap::Schema* schema_;
  std::shared_ptr<ldap::TemplateRegistry> registry_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::optional<CompiledContainment>>
      compiled_cache_;
  Stats stats_;
};

}  // namespace fbdr::containment
