#pragma once

#include <string>
#include <vector>

#include "ldap/dn.h"

namespace fbdr::containment {

/// A subtree replication context (paper §2.3): a naming-context suffix plus
/// the DNs of its referral objects, which mark where subordinate naming
/// contexts (held by other servers) begin.
struct ReplicationContext {
  ldap::Dn suffix;
  std::vector<ldap::Dn> referrals;

  std::string to_string() const;
};

/// Paper §3.4.1, algorithm isContained(b, C): whether a query with base `b`
/// can be answered (fully or partially) by a subtree replica holding the
/// replication contexts `contexts`. The base must lie inside some context and
/// not under any of that context's referral cut-points.
bool subtree_is_contained(const ldap::Dn& base,
                          const std::vector<ReplicationContext>& contexts);

}  // namespace fbdr::containment
