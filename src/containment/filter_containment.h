#pragma once

#include <cstddef>

#include "ldap/filter.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// General LDAP filter containment (paper Proposition 1): `inner` is
/// semantically contained in `outer` iff the expression inner AND NOT outer
/// is inconsistent. The check expands both sides to DNF and proves every
/// combined conjunct inconsistent.
///
/// The decision is *sound* under single-valued attribute semantics: a true
/// return guarantees every entry matching `inner` matches `outer`. For
/// fragments outside the provable class (exotic substring interactions,
/// expansions over `max_conjuncts`), the function returns false — the safe
/// answer for a replica, which then forwards the query to the master.
bool filter_contained(const ldap::Filter& inner, const ldap::Filter& outer,
                      const ldap::Schema& schema = ldap::Schema::default_instance(),
                      std::size_t max_conjuncts = 4096);

/// Same-template fast path (paper Proposition 3): for two positive filters of
/// the same template, `inner` is contained in `outer` if each predicate of
/// `inner` is contained in the corresponding predicate of `outer`. O(n)
/// assertion-value comparisons. Precondition: both filters match one template
/// (identical skeleton); the function walks the two trees in lockstep and
/// returns false on any structural mismatch.
bool same_template_contained(
    const ldap::Filter& inner, const ldap::Filter& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());

/// Containment of one predicate in another over the same attribute, used by
/// the Proposition 3 walk: (a=x) in (a=y) iff x=y; (a>=x) in (a>=y) iff x>=y;
/// (a<=x) in (a<=y) iff x<=y; anything in (a=*); substring by sound pattern
/// containment; plus the cross-kind cases derivable by range reasoning
/// ((a=x) in (a>=y) iff x>=y, (a=x) in (a=p*) iff x matches, ...).
bool predicate_contained(
    const ldap::Filter& inner, const ldap::Filter& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());

}  // namespace fbdr::containment
