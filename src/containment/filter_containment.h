#pragma once

#include <cstddef>
#include <optional>

#include "ldap/filter.h"
#include "ldap/filter_ir.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// General LDAP filter containment (paper Proposition 1): `inner` is
/// semantically contained in `outer` iff the expression inner AND NOT outer
/// is inconsistent. The check expands both sides to DNF and proves every
/// combined conjunct inconsistent.
///
/// The decision is *sound* under single-valued attribute semantics: a true
/// return guarantees every entry matching `inner` matches `outer`. For
/// fragments outside the provable class (exotic substring interactions,
/// expansions over `max_conjuncts`), the function returns false — the safe
/// answer for a replica, which then forwards the query to the master.
///
/// The primary overload takes canonical IR (assertion values pre-normalized,
/// range facets attached); the Filter overload interns both sides and
/// delegates.
bool filter_contained(const ldap::FilterIr& inner, const ldap::FilterIr& outer,
                      const ldap::Schema& schema = ldap::Schema::default_instance(),
                      std::size_t max_conjuncts = 4096);
bool filter_contained(const ldap::Filter& inner, const ldap::Filter& outer,
                      const ldap::Schema& schema = ldap::Schema::default_instance(),
                      std::size_t max_conjuncts = 4096);

/// The pre-IR Proposition 1 check over the raw AST (normalizes values during
/// DNF expansion). Kept as the benchmark baseline and the equivalence suite's
/// oracle; production paths go through the IR overload.
bool filter_contained_legacy(
    const ldap::Filter& inner, const ldap::Filter& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance(),
    std::size_t max_conjuncts = 4096);

/// Same-template fast path (paper Proposition 3) over canonical IR: for two
/// positive filters of the same template, `inner` is contained in `outer` if
/// each predicate of `inner` is contained in the corresponding predicate of
/// `outer`. O(n) comparisons of pre-normalized assertion values.
///
/// Returns nullopt when the two trees do not walk in lockstep (canonical
/// sorting or dedup collapsed one side differently, or a Not appears) — the
/// caller should fall back to the general Proposition 1 check rather than
/// conclude non-containment.
std::optional<bool> same_template_contained(
    const ldap::FilterIr& inner, const ldap::FilterIr& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());

/// AST form of the Proposition 3 walk (lockstep over the raw trees; returns
/// false on structural mismatch). Precondition: both filters match one
/// template (identical skeleton).
bool same_template_contained(
    const ldap::Filter& inner, const ldap::Filter& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());

/// Containment of one predicate in another over the same attribute, used by
/// the Proposition 3 walk: (a=x) in (a=y) iff x=y; (a>=x) in (a>=y) iff x>=y;
/// (a<=x) in (a<=y) iff x<=y; anything in (a=*); substring by sound pattern
/// containment; plus the cross-kind cases derivable by range reasoning
/// ((a=x) in (a>=y) iff x>=y, (a=x) in (a=p*) iff x matches, ...).
///
/// The IR overload compares the nodes' pre-normalized values directly (no
/// normalize calls); the AST overload normalizes inline.
bool predicate_contained(
    const ldap::FilterIr& inner, const ldap::FilterIr& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());
bool predicate_contained(
    const ldap::Filter& inner, const ldap::Filter& outer,
    const ldap::Schema& schema = ldap::Schema::default_instance());

}  // namespace fbdr::containment
