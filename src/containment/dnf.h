#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "containment/value_range.h"
#include "ldap/filter.h"
#include "ldap/filter_ir.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// Thrown when DNF expansion would exceed the configured conjunct budget.
/// Callers treat this as "containment not provable" — the safe answer.
class DnfLimitExceeded : public std::runtime_error {
 public:
  explicit DnfLimitExceeded(std::size_t limit)
      : std::runtime_error("DNF expansion exceeded " + std::to_string(limit) +
                           " conjuncts") {}
};

/// Accumulated constraints on one attribute within a conjunct Bi of the
/// expression F1 AND NOT F2 (paper Proposition 1). Range constraints and
/// patterns imply the attribute is present; `absent` records a negated
/// presence requirement.
struct AttrConstraints {
  ValueRange range = ValueRange::all();
  bool has_range = false;  // at least one range-imposing predicate
  bool present = false;    // positive presence requirement
  bool absent = false;     // negated presence requirement
  std::vector<ldap::SubstringPattern> patterns;      // positive, normalized
  std::vector<ldap::SubstringPattern> not_patterns;  // negated, normalized

  bool implies_present() const {
    return present || has_range || !patterns.empty() || !not_patterns.empty();
  }
};

/// One conjunction of simple predicates, keyed by attribute name.
using Conjunct = std::map<std::string, AttrConstraints>;

/// Merges the constraints of `b` into `a` (logical AND of two conjuncts).
Conjunct merge_conjuncts(const Conjunct& a, const Conjunct& b,
                         const ldap::Schema& schema);

/// Expands a filter (negated when `negated`) into disjunctive normal form
/// over per-attribute constraints. Positive filters only — a NOT node flips
/// the `negated` flag, so arbitrary filters are supported; the *constraints*
/// produced are always positive/negative atoms.
///
/// Negated predicates expand per single-valued LDAP semantics:
///   NOT (a=v)   ->  absent(a) OR (a < v) OR (a > v)
///   NOT (a>=v)  ->  absent(a) OR (a < v)
///   NOT (a<=v)  ->  absent(a) OR (a > v)
///   NOT (a=*)   ->  absent(a)
///   NOT (a=p*)  ->  absent(a) OR (a < p) OR (a >= succ(p))   [string syntax]
///   NOT (a=..S..) -> absent(a) OR not-pattern(a, S)          [otherwise]
///
/// Throws DnfLimitExceeded when the expansion exceeds `max_conjuncts`.
///
/// The primary overload expands canonical IR: assertion values are already
/// normalized on the nodes and the typed-range facet decides the prefix
/// cases, so expansion performs no normalization. The Filter overload
/// interns first (a hash-cons lookup for filters seen before) and delegates.
std::vector<Conjunct> to_dnf(const ldap::FilterIr& filter, bool negated,
                             const ldap::Schema& schema,
                             std::size_t max_conjuncts = 4096);
std::vector<Conjunct> to_dnf(const ldap::Filter& filter, bool negated,
                             const ldap::Schema& schema,
                             std::size_t max_conjuncts = 4096);

/// The pre-IR expansion: walks the raw AST and normalizes every assertion
/// value inline. Kept only as the benchmark baseline and the equivalence
/// suite's oracle (like ContentTracker::set_legacy_eval); production paths
/// go through the IR overload.
std::vector<Conjunct> legacy_to_dnf(const ldap::Filter& filter, bool negated,
                                    const ldap::Schema& schema,
                                    std::size_t max_conjuncts = 4096);

/// Decides whether a conjunct is provably unsatisfiable (paper §4.1: "the
/// predicates in Bi should impose an empty range for at least one of the
/// attributes appearing in it", extended with presence/absence and substring
/// reasoning). Sound under single-valued attribute semantics.
bool conjunct_inconsistent(const Conjunct& conjunct, const ldap::Schema& schema);

}  // namespace fbdr::containment
