#include "containment/query_containment.h"

#include "containment/filter_containment.h"

namespace fbdr::containment {

using ldap::Query;
using ldap::Scope;

bool region_contained(const Query& q, const Query& qs) {
  // Transcription of the paper's QC region logic (§4), with b = q.base,
  // s = q.scope, bs = qs.base, ss = qs.scope.
  if (qs.base == q.base) {
    return qs.scope >= q.scope;
  }
  if (!qs.base.is_ancestor_of(q.base)) {
    return false;
  }
  if (qs.scope == Scope::Subtree) {
    return true;
  }
  // bs above b with ss != SUBTREE: only a SINGLE LEVEL search from the parent
  // of b can still cover q, and then only when q is BASE-scoped.
  return qs.scope > q.scope && qs.base.is_parent_of(q.base);
}

bool query_contained(
    const Query& q, const Query& qs,
    const std::function<bool(const ldap::Filter&, const ldap::Filter&)>&
        filter_check) {
  if (!region_contained(q, qs)) return false;
  if (!q.attrs.subset_of(qs.attrs)) return false;
  if (!q.filter || !qs.filter) return false;
  return filter_check(*q.filter, *qs.filter);
}

bool query_contained(const Query& q, const Query& qs, const ldap::Schema& schema) {
  return query_contained(q, qs,
                         [&schema](const ldap::Filter& f, const ldap::Filter& fs) {
                           return filter_contained(f, fs, schema);
                         });
}

}  // namespace fbdr::containment
