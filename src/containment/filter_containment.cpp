#include "containment/filter_containment.h"

#include "containment/dnf.h"
#include "containment/pattern.h"
#include "containment/value_range.h"

namespace fbdr::containment {

using ldap::Filter;
using ldap::FilterInterner;
using ldap::FilterIr;
using ldap::FilterIrPtr;
using ldap::FilterKind;
using ldap::Schema;
using ldap::SubstringPattern;

bool filter_contained(const FilterIr& inner, const FilterIr& outer,
                      const Schema& schema, std::size_t max_conjuncts) {
  try {
    const std::vector<Conjunct> dnf_inner =
        to_dnf(inner, /*negated=*/false, schema, max_conjuncts);
    const std::vector<Conjunct> dnf_not_outer =
        to_dnf(outer, /*negated=*/true, schema, max_conjuncts);
    for (const Conjunct& a : dnf_inner) {
      for (const Conjunct& b : dnf_not_outer) {
        if (!conjunct_inconsistent(merge_conjuncts(a, b, schema), schema)) {
          return false;
        }
      }
    }
    return true;
  } catch (const DnfLimitExceeded&) {
    return false;  // not provable within budget -> treat as not contained
  }
}

bool filter_contained(const Filter& inner, const Filter& outer,
                      const Schema& schema, std::size_t max_conjuncts) {
  FilterInterner& interner = FilterInterner::for_schema(schema);
  return filter_contained(*interner.intern(inner), *interner.intern(outer),
                          schema, max_conjuncts);
}

bool filter_contained_legacy(const Filter& inner, const Filter& outer,
                             const Schema& schema, std::size_t max_conjuncts) {
  try {
    const std::vector<Conjunct> dnf_inner =
        legacy_to_dnf(inner, /*negated=*/false, schema, max_conjuncts);
    const std::vector<Conjunct> dnf_not_outer =
        legacy_to_dnf(outer, /*negated=*/true, schema, max_conjuncts);
    for (const Conjunct& a : dnf_inner) {
      for (const Conjunct& b : dnf_not_outer) {
        if (!conjunct_inconsistent(merge_conjuncts(a, b, schema), schema)) {
          return false;
        }
      }
    }
    return true;
  } catch (const DnfLimitExceeded&) {
    return false;
  }
}

bool predicate_contained(const FilterIr& inner, const FilterIr& outer,
                         const Schema& schema) {
  if (!inner.is_predicate() || !outer.is_predicate()) return false;
  if (inner.attr_id() != outer.attr_id()) return false;
  const std::string& attr = inner.attribute();
  const ValueOrder order(schema, attr);

  // Everything (with the attribute present) is contained in a presence test.
  if (outer.kind() == FilterKind::Present) return true;
  if (inner.kind() == FilterKind::Present) return false;

  // All assertion values below come pre-normalized off the IR nodes.
  switch (outer.kind()) {
    case FilterKind::Equality: {
      // Only an equality with the same value is inside a point.
      return inner.kind() == FilterKind::Equality &&
             inner.norm_value() == outer.norm_value();
    }
    case FilterKind::GreaterEq:
    case FilterKind::LessEq: {
      const ValueRange outer_range =
          outer.kind() == FilterKind::GreaterEq
              ? ValueRange::at_least(outer.norm_value())
              : ValueRange::at_most(outer.norm_value());
      switch (inner.kind()) {
        case FilterKind::Equality:
          return outer_range.contains_value(inner.norm_value(), order);
        case FilterKind::GreaterEq:
          return outer_range.contains_range(
              ValueRange::at_least(inner.norm_value()), order);
        case FilterKind::LessEq:
          return outer_range.contains_range(
              ValueRange::at_most(inner.norm_value()), order);
        case FilterKind::Substring: {
          // A prefix pattern lies in a range iff its prefix interval does;
          // the facet already excludes integer syntax (prefix order and
          // numeric order disagree).
          if (inner.range_facet() == ldap::RangeFacet::Prefix) {
            return outer_range.contains_range(
                ValueRange::prefix(inner.pattern().initial), order);
          }
          return false;
        }
        default:
          return false;
      }
    }
    case FilterKind::Substring: {
      const SubstringPattern& outer_p = outer.pattern();
      if (inner.kind() == FilterKind::Equality) {
        return outer_p.matches(inner.norm_value());
      }
      if (inner.kind() == FilterKind::Substring) {
        return pattern_contained(inner.pattern(), outer_p);
      }
      return false;
    }
    default:
      return false;
  }
}

std::optional<bool> same_template_contained(const FilterIr& inner,
                                            const FilterIr& outer,
                                            const Schema& schema) {
  if (inner.kind() != outer.kind()) return std::nullopt;
  if (inner.is_composite()) {
    if (inner.kind() == FilterKind::Not) return std::nullopt;  // positive only
    // Canonicalization may have collapsed duplicate children on one side, in
    // which case the trees no longer walk in lockstep.
    if (inner.children().size() != outer.children().size()) return std::nullopt;
    for (std::size_t i = 0; i < inner.children().size(); ++i) {
      const auto child =
          same_template_contained(*inner.children()[i], *outer.children()[i],
                                  schema);
      if (!child) return std::nullopt;
      if (!*child) return false;
    }
    return true;
  }
  // Lockstep predicates of a shared template always agree on kind and
  // attribute; anything else is a structural mismatch.
  if (inner.attr_id() != outer.attr_id()) return std::nullopt;
  return predicate_contained(inner, outer, schema);
}

bool predicate_contained(const Filter& inner, const Filter& outer,
                         const Schema& schema) {
  if (!inner.is_predicate() || !outer.is_predicate()) return false;
  if (inner.attribute() != outer.attribute()) return false;
  const std::string& attr = inner.attribute();
  const ValueOrder order(schema, attr);

  // Everything (with the attribute present) is contained in a presence test.
  if (outer.kind() == FilterKind::Present) return true;
  if (inner.kind() == FilterKind::Present) return false;

  auto norm = [&](const std::string& v) { return schema.normalize(attr, v); };

  // Represent the inner predicate by a range and/or a pattern.
  switch (outer.kind()) {
    case FilterKind::Equality: {
      // Only an equality with the same value is inside a point.
      return inner.kind() == FilterKind::Equality &&
             schema.equals(attr, inner.value(), outer.value());
    }
    case FilterKind::GreaterEq:
    case FilterKind::LessEq: {
      const ValueRange outer_range =
          outer.kind() == FilterKind::GreaterEq
              ? ValueRange::at_least(norm(outer.value()))
              : ValueRange::at_most(norm(outer.value()));
      switch (inner.kind()) {
        case FilterKind::Equality:
          return outer_range.contains_value(norm(inner.value()), order);
        case FilterKind::GreaterEq:
          return outer_range.contains_range(
              ValueRange::at_least(norm(inner.value())), order);
        case FilterKind::LessEq:
          return outer_range.contains_range(
              ValueRange::at_most(norm(inner.value())), order);
        case FilterKind::Substring: {
          // A prefix pattern lies in a range iff its prefix interval does
          // (string syntaxes only; checked via the general engine otherwise).
          const SubstringPattern p =
              normalize_pattern(inner.substrings(), attr, schema);
          if (p.is_prefix_only() &&
              schema.syntax_of(attr) != ldap::Syntax::Integer) {
            return outer_range.contains_range(ValueRange::prefix(p.initial),
                                              order);
          }
          return false;
        }
        default:
          return false;
      }
    }
    case FilterKind::Substring: {
      const SubstringPattern outer_p =
          normalize_pattern(outer.substrings(), attr, schema);
      if (inner.kind() == FilterKind::Equality) {
        return outer_p.matches(norm(inner.value()));
      }
      if (inner.kind() == FilterKind::Substring) {
        return pattern_contained(
            normalize_pattern(inner.substrings(), attr, schema), outer_p);
      }
      return false;
    }
    default:
      return false;
  }
}

bool same_template_contained(const Filter& inner, const Filter& outer,
                             const Schema& schema) {
  if (inner.kind() != outer.kind()) return false;
  if (inner.is_composite()) {
    if (inner.kind() == FilterKind::Not) return false;  // positive filters only
    if (inner.children().size() != outer.children().size()) return false;
    for (std::size_t i = 0; i < inner.children().size(); ++i) {
      if (!same_template_contained(*inner.children()[i], *outer.children()[i],
                                   schema)) {
        return false;
      }
    }
    return true;
  }
  return predicate_contained(inner, outer, schema);
}

}  // namespace fbdr::containment
