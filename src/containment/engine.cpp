#include "containment/engine.h"

#include "ldap/filter_ir.h"

namespace fbdr::containment {

using ldap::BoundTemplate;
using ldap::Filter;
using ldap::FilterInterner;
using ldap::FilterIrPtr;
using ldap::Query;
using ldap::TemplateRegistry;

ContainmentEngine::ContainmentEngine(const ldap::Schema& schema,
                                     std::shared_ptr<TemplateRegistry> registry)
    : schema_(&schema), registry_(std::move(registry)) {
  if (!registry_) registry_ = std::make_shared<TemplateRegistry>();
}

std::optional<BoundTemplate> ContainmentEngine::bind(const Filter& filter) const {
  return registry_->match(filter, *schema_);
}

const CompiledContainment* ContainmentEngine::compiled_for(std::size_t inner_id,
                                                           std::size_t outer_id) {
  const auto key = std::make_pair(inner_id, outer_id);
  auto it = compiled_cache_.find(key);
  if (it == compiled_cache_.end()) {
    ++stats_.compilations;
    it = compiled_cache_
             .emplace(key, CompiledContainment::compile(registry_->at(inner_id),
                                                        registry_->at(outer_id),
                                                        *schema_))
             .first;
  }
  return it->second ? &*it->second : nullptr;
}

bool ContainmentEngine::filter_contained(
    const Filter& inner, const std::optional<BoundTemplate>& inner_binding,
    const Filter& outer, const std::optional<BoundTemplate>& outer_binding) {
  ++stats_.checks;
  FilterInterner& interner = FilterInterner::for_schema(*schema_);
  const FilterIrPtr inner_ir = interner.intern(inner);
  const FilterIrPtr outer_ir = interner.intern(outer);
  if (inner_binding && outer_binding) {
    if (inner_binding->template_id == outer_binding->template_id) {
      // Proposition 3 over canonical IR. Canonicalization can collapse the
      // two instances into different shapes (duplicate children dedup); the
      // lockstep walk then reports nullopt and we fall through to the
      // general check instead of answering unsoundly.
      if (const auto verdict =
              same_template_contained(*inner_ir, *outer_ir, *schema_)) {
        ++stats_.same_template;
        return *verdict;
      }
    } else if (const CompiledContainment* condition = compiled_for(
                   inner_binding->template_id, outer_binding->template_id)) {
      ++stats_.compiled;
      if (condition->trivially_true() || condition->trivially_false()) {
        ++stats_.compiled_trivial;
      }
      return condition->evaluate(inner_binding->norm_slots,
                                 outer_binding->norm_slots, *schema_);
    }
  }
  ++stats_.general;
  return containment::filter_contained(*inner_ir, *outer_ir, *schema_);
}

bool ContainmentEngine::query_contained(
    const Query& q, const std::optional<BoundTemplate>& q_binding,
    const Query& stored, const std::optional<BoundTemplate>& stored_binding) {
  return containment::query_contained(
      q, stored, [&](const Filter& f, const Filter& fs) {
        return filter_contained(f, q_binding, fs, stored_binding);
      });
}

bool ContainmentEngine::query_contained(const Query& q, const Query& stored) {
  const auto q_binding = q.filter ? bind(*q.filter) : std::nullopt;
  const auto stored_binding = stored.filter ? bind(*stored.filter) : std::nullopt;
  return query_contained(q, q_binding, stored, stored_binding);
}

}  // namespace fbdr::containment
