#include "containment/dnf.h"

#include "containment/pattern.h"
#include "ldap/error.h"

namespace fbdr::containment {

using ldap::Filter;
using ldap::FilterInterner;
using ldap::FilterIr;
using ldap::FilterIrPtr;
using ldap::FilterKind;
using ldap::RangeFacet;
using ldap::Schema;
using ldap::SubstringPattern;
using ldap::Syntax;

namespace {

/// True when prefix-substring predicates on this attribute can be translated
/// into lexicographic ranges (integer ordering is numeric, which does not
/// agree with prefix order, so integers keep patterns opaque).
bool prefix_ranges_valid(std::string_view attr, const Schema& schema) {
  return schema.syntax_of(attr) != Syntax::Integer;
}

void add_range(Conjunct& conjunct, const std::string& attr, ValueRange range,
               const Schema& schema) {
  AttrConstraints& c = conjunct[attr];
  c.range = c.range.intersect(range, ValueOrder(schema, attr));
  c.has_range = true;
}

void add_pattern(Conjunct& conjunct, const std::string& attr,
                 SubstringPattern pattern) {
  conjunct[attr].patterns.push_back(std::move(pattern));
}

void add_not_pattern(Conjunct& conjunct, const std::string& attr,
                     SubstringPattern pattern) {
  conjunct[attr].not_patterns.push_back(std::move(pattern));
}

Conjunct single(const std::string& attr, AttrConstraints constraints) {
  Conjunct c;
  c[attr] = std::move(constraints);
  return c;
}

/// DNF of one canonical-IR predicate (possibly negated). Values and
/// patterns come pre-normalized off the node; the range facet replaces the
/// prefix-translatability re-derivation.
std::vector<Conjunct> predicate_dnf(const FilterIr& p, bool negated,
                                    const Schema& schema) {
  const std::string& attr = p.attribute();
  std::vector<Conjunct> out;

  switch (p.kind()) {
    case FilterKind::Present: {
      AttrConstraints c;
      if (!negated) {
        c.present = true;
      } else {
        c.absent = true;
      }
      out.push_back(single(attr, std::move(c)));
      return out;
    }
    case FilterKind::Equality: {
      const std::string& v = p.norm_value();
      if (!negated) {
        Conjunct c;
        add_range(c, attr, ValueRange::point(v), schema);
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        Conjunct below;
        add_range(below, attr, ValueRange::less_than(v), schema);
        out.push_back(std::move(below));
        Conjunct above;
        add_range(above, attr, ValueRange::greater_than(v), schema);
        out.push_back(std::move(above));
      }
      return out;
    }
    case FilterKind::GreaterEq:
    case FilterKind::LessEq: {
      const std::string& v = p.norm_value();
      const bool ge = p.kind() == FilterKind::GreaterEq;
      if (!negated) {
        Conjunct c;
        add_range(c, attr, ge ? ValueRange::at_least(v) : ValueRange::at_most(v),
                  schema);
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        Conjunct complement;
        add_range(complement, attr,
                  ge ? ValueRange::less_than(v) : ValueRange::greater_than(v),
                  schema);
        out.push_back(std::move(complement));
      }
      return out;
    }
    case FilterKind::Substring: {
      const SubstringPattern& pattern = p.pattern();
      const bool prefix_only = p.range_facet() == RangeFacet::Prefix;
      if (!negated) {
        Conjunct c;
        add_pattern(c, attr, pattern);
        if (!pattern.initial.empty() && prefix_ranges_valid(attr, schema)) {
          // Range refinement: a value matching "p*..." lies in prefix(p).
          add_range(c, attr, ValueRange::prefix(pattern.initial), schema);
        }
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        if (prefix_only) {
          Conjunct below;
          add_range(below, attr, ValueRange::less_than(pattern.initial), schema);
          out.push_back(std::move(below));
          if (auto upper = prefix_upper_bound(pattern.initial)) {
            Conjunct above;
            add_range(above, attr, ValueRange::at_least(*upper), schema);
            out.push_back(std::move(above));
          }
        } else {
          Conjunct np;
          add_not_pattern(np, attr, pattern);
          out.push_back(std::move(np));
        }
      }
      return out;
    }
    case FilterKind::And:
    case FilterKind::Or:
    case FilterKind::Not:
      throw ldap::OperationError(ldap::ResultCode::OperationsError,
                                 "predicate_dnf called on composite node");
  }
  return out;
}

/// Legacy DNF of one raw-AST predicate: normalizes assertion values inline.
std::vector<Conjunct> legacy_predicate_dnf(const Filter& p, bool negated,
                                           const Schema& schema) {
  const std::string& attr = p.attribute();
  const ValueOrder order(schema, attr);
  std::vector<Conjunct> out;

  switch (p.kind()) {
    case FilterKind::Present: {
      if (!negated) {
        AttrConstraints c;
        c.present = true;
        out.push_back(single(attr, std::move(c)));
      } else {
        AttrConstraints c;
        c.absent = true;
        out.push_back(single(attr, std::move(c)));
      }
      return out;
    }
    case FilterKind::Equality: {
      const std::string v = schema.normalize(attr, p.value());
      if (!negated) {
        Conjunct c;
        add_range(c, attr, ValueRange::point(v), schema);
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        Conjunct below;
        add_range(below, attr, ValueRange::less_than(v), schema);
        out.push_back(std::move(below));
        Conjunct above;
        add_range(above, attr, ValueRange::greater_than(v), schema);
        out.push_back(std::move(above));
      }
      return out;
    }
    case FilterKind::GreaterEq:
    case FilterKind::LessEq: {
      const std::string v = schema.normalize(attr, p.value());
      const bool ge = p.kind() == FilterKind::GreaterEq;
      if (!negated) {
        Conjunct c;
        add_range(c, attr, ge ? ValueRange::at_least(v) : ValueRange::at_most(v),
                  schema);
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        Conjunct complement;
        add_range(complement, attr,
                  ge ? ValueRange::less_than(v) : ValueRange::greater_than(v),
                  schema);
        out.push_back(std::move(complement));
      }
      return out;
    }
    case FilterKind::Substring: {
      const SubstringPattern pattern =
          normalize_pattern(p.substrings(), attr, schema);
      const bool prefix_only =
          pattern.is_prefix_only() && prefix_ranges_valid(attr, schema);
      if (!negated) {
        Conjunct c;
        add_pattern(c, attr, pattern);
        if (!pattern.initial.empty() && prefix_ranges_valid(attr, schema)) {
          // Range refinement: a value matching "p*..." lies in prefix(p).
          add_range(c, attr, ValueRange::prefix(pattern.initial), schema);
        }
        out.push_back(std::move(c));
      } else {
        AttrConstraints absent;
        absent.absent = true;
        out.push_back(single(attr, std::move(absent)));
        if (prefix_only) {
          Conjunct below;
          add_range(below, attr, ValueRange::less_than(pattern.initial), schema);
          out.push_back(std::move(below));
          if (auto upper = prefix_upper_bound(pattern.initial)) {
            Conjunct above;
            add_range(above, attr, ValueRange::at_least(*upper), schema);
            out.push_back(std::move(above));
          }
        } else {
          Conjunct np;
          add_not_pattern(np, attr, pattern);
          out.push_back(std::move(np));
        }
      }
      return out;
    }
    case FilterKind::And:
    case FilterKind::Or:
    case FilterKind::Not:
      throw ldap::OperationError(ldap::ResultCode::OperationsError,
                                 "predicate_dnf called on composite node");
  }
  return out;
}

std::vector<Conjunct> cross_product(const std::vector<std::vector<Conjunct>>& parts,
                                    const Schema& schema,
                                    std::size_t max_conjuncts) {
  std::vector<Conjunct> result{Conjunct{}};
  for (const std::vector<Conjunct>& part : parts) {
    std::vector<Conjunct> next;
    if (result.size() * part.size() > max_conjuncts) {
      throw DnfLimitExceeded(max_conjuncts);
    }
    next.reserve(result.size() * part.size());
    for (const Conjunct& a : result) {
      for (const Conjunct& b : part) {
        next.push_back(merge_conjuncts(a, b, schema));
      }
    }
    result = std::move(next);
  }
  return result;
}

}  // namespace

Conjunct merge_conjuncts(const Conjunct& a, const Conjunct& b,
                         const Schema& schema) {
  Conjunct out = a;
  for (const auto& [attr, cb] : b) {
    auto [it, inserted] = out.try_emplace(attr, cb);
    if (inserted) continue;
    AttrConstraints& ca = it->second;
    ca.range = ca.range.intersect(cb.range, ValueOrder(schema, attr));
    ca.has_range = ca.has_range || cb.has_range;
    ca.present = ca.present || cb.present;
    ca.absent = ca.absent || cb.absent;
    ca.patterns.insert(ca.patterns.end(), cb.patterns.begin(), cb.patterns.end());
    ca.not_patterns.insert(ca.not_patterns.end(), cb.not_patterns.begin(),
                           cb.not_patterns.end());
  }
  return out;
}

std::vector<Conjunct> to_dnf(const FilterIr& filter, bool negated,
                             const Schema& schema, std::size_t max_conjuncts) {
  switch (filter.kind()) {
    case FilterKind::Not:
      return to_dnf(*filter.children().front(), !negated, schema, max_conjuncts);
    case FilterKind::And:
    case FilterKind::Or: {
      const bool conjunctive = (filter.kind() == FilterKind::And) != negated;
      if (conjunctive) {
        std::vector<std::vector<Conjunct>> parts;
        parts.reserve(filter.children().size());
        for (const FilterIrPtr& child : filter.children()) {
          parts.push_back(to_dnf(*child, negated, schema, max_conjuncts));
        }
        return cross_product(parts, schema, max_conjuncts);
      }
      std::vector<Conjunct> out;
      for (const FilterIrPtr& child : filter.children()) {
        std::vector<Conjunct> part = to_dnf(*child, negated, schema, max_conjuncts);
        if (out.size() + part.size() > max_conjuncts) {
          throw DnfLimitExceeded(max_conjuncts);
        }
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    default:
      return predicate_dnf(filter, negated, schema);
  }
}

std::vector<Conjunct> to_dnf(const Filter& filter, bool negated,
                             const Schema& schema, std::size_t max_conjuncts) {
  const FilterIrPtr ir = FilterInterner::for_schema(schema).intern(filter);
  return to_dnf(*ir, negated, schema, max_conjuncts);
}

std::vector<Conjunct> legacy_to_dnf(const Filter& filter, bool negated,
                                    const Schema& schema,
                                    std::size_t max_conjuncts) {
  switch (filter.kind()) {
    case FilterKind::Not:
      return legacy_to_dnf(*filter.children().front(), !negated, schema,
                           max_conjuncts);
    case FilterKind::And:
    case FilterKind::Or: {
      const bool conjunctive = (filter.kind() == FilterKind::And) != negated;
      if (conjunctive) {
        std::vector<std::vector<Conjunct>> parts;
        parts.reserve(filter.children().size());
        for (const ldap::FilterPtr& child : filter.children()) {
          parts.push_back(legacy_to_dnf(*child, negated, schema, max_conjuncts));
        }
        return cross_product(parts, schema, max_conjuncts);
      }
      std::vector<Conjunct> out;
      for (const ldap::FilterPtr& child : filter.children()) {
        std::vector<Conjunct> part =
            legacy_to_dnf(*child, negated, schema, max_conjuncts);
        if (out.size() + part.size() > max_conjuncts) {
          throw DnfLimitExceeded(max_conjuncts);
        }
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    default:
      return legacy_predicate_dnf(filter, negated, schema);
  }
}

bool conjunct_inconsistent(const Conjunct& conjunct, const Schema& schema) {
  for (const auto& [attr, c] : conjunct) {
    const ValueOrder order(schema, attr);
    if (c.absent) {
      if (c.implies_present()) return true;
      // A required attribute (objectclass) is never absent.
      const ldap::AttributeType* type = schema.find(attr);
      if (type && type->required) return true;
    }
    if (c.has_range && c.range.empty(order)) return true;
    // A range pinned to a single point interacts with substring assertions.
    if (c.has_range) {
      if (const auto point = c.range.single_value(order)) {
        for (const SubstringPattern& p : c.patterns) {
          if (!p.matches(*point)) return true;
        }
        for (const SubstringPattern& np : c.not_patterns) {
          if (np.matches(*point)) return true;
        }
      }
    }
    // A positive pattern wholly inside a negated pattern is impossible.
    for (const SubstringPattern& p : c.patterns) {
      for (const SubstringPattern& np : c.not_patterns) {
        if (pattern_contained(p, np)) return true;
      }
    }
  }
  return false;
}

}  // namespace fbdr::containment
