#include "containment/pattern.h"

#include <string>
#include <vector>

namespace fbdr::containment {

using ldap::SubstringPattern;

SubstringPattern normalize_pattern(const SubstringPattern& pattern,
                                   std::string_view attr,
                                   const ldap::Schema& schema) {
  SubstringPattern out;
  out.initial = schema.normalize(attr, pattern.initial);
  out.final = schema.normalize(attr, pattern.final);
  out.any.reserve(pattern.any.size());
  for (const std::string& part : pattern.any) {
    out.any.push_back(schema.normalize(attr, part));
  }
  return out;
}

namespace {

bool is_prefix(std::string_view prefix, std::string_view s) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool is_suffix(std::string_view suffix, std::string_view s) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

bool pattern_contained(const SubstringPattern& inner,
                       const SubstringPattern& outer) {
  // The outer prefix must already be forced by the inner prefix.
  if (!outer.initial.empty() && !is_prefix(outer.initial, inner.initial)) {
    return false;
  }
  if (!outer.final.empty() && !is_suffix(outer.final, inner.final)) {
    return false;
  }
  if (outer.any.empty()) return true;

  // Each outer `any` component must be forced by a distinct inner component,
  // in order. The candidate inner components are, left to right: the part of
  // `initial` after outer's prefix, the `any` parts, and the part of `final`
  // before outer's suffix. Using the trimmed initial/final is required: the
  // bytes consumed by outer's own prefix/suffix cannot also host an `any`
  // component (they may overlap in the matched string otherwise).
  std::vector<std::string_view> components;
  std::string_view inner_initial = inner.initial;
  inner_initial.remove_prefix(outer.initial.size());
  if (!inner_initial.empty()) components.push_back(inner_initial);
  for (const std::string& part : inner.any) components.push_back(part);
  std::string_view inner_final = inner.final;
  inner_final.remove_suffix(outer.final.size());
  if (!inner_final.empty()) components.push_back(inner_final);

  std::size_t next = 0;
  for (const std::string& needle : outer.any) {
    bool found = false;
    while (next < components.size()) {
      const std::string_view host = components[next];
      ++next;
      if (host.find(needle) != std::string_view::npos) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace fbdr::containment
