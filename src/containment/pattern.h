#pragma once

#include <string_view>

#include "ldap/filter.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// Normalizes every component of a substring pattern under the attribute's
/// matching rule, so that later byte-level reasoning is correct for
/// case-ignore attributes.
ldap::SubstringPattern normalize_pattern(const ldap::SubstringPattern& pattern,
                                         std::string_view attr,
                                         const ldap::Schema& schema);

/// Sound (but not complete) substring-pattern containment: returns true only
/// when every string matching `inner` provably matches `outer`. Both patterns
/// must be normalized. Rules:
///   - outer.initial must be a prefix of inner.initial,
///   - outer.final must be a suffix of inner.final,
///   - outer's `any` components must embed, in order, into the remaining
///     component sequence of inner (each as a substring of a distinct
///     component, consuming components left to right).
/// Incomparable pattern pairs yield false, which containment callers treat as
/// "not contained" — the safe answer for a replica.
bool pattern_contained(const ldap::SubstringPattern& inner,
                       const ldap::SubstringPattern& outer);

}  // namespace fbdr::containment
