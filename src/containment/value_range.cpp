#include "containment/value_range.h"

namespace fbdr::containment {

namespace {

/// Compares two lower bounds: returns <0 when `a` admits more values (is
/// looser) than `b`, 0 when identical, >0 when tighter.
int compare_lower(const Bound& a, const Bound& b, const ValueOrder& order) {
  if (a.kind == Bound::Kind::NegInf || b.kind == Bound::Kind::NegInf) {
    if (a.kind == b.kind) return 0;
    return a.kind == Bound::Kind::NegInf ? -1 : 1;
  }
  if (a.kind == Bound::Kind::PosInf || b.kind == Bound::Kind::PosInf) {
    if (a.kind == b.kind) return 0;
    return a.kind == Bound::Kind::PosInf ? 1 : -1;
  }
  const int cmp = order.compare(a.value, b.value);
  if (cmp != 0) return cmp;
  // Same value: inclusive lower bound is looser than exclusive.
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? -1 : 1;
}

/// Compares two upper bounds: returns <0 when `a` is tighter (admits fewer
/// values) than `b`.
int compare_upper(const Bound& a, const Bound& b, const ValueOrder& order) {
  if (a.kind == Bound::Kind::PosInf || b.kind == Bound::Kind::PosInf) {
    if (a.kind == b.kind) return 0;
    return a.kind == Bound::Kind::PosInf ? 1 : -1;
  }
  if (a.kind == Bound::Kind::NegInf || b.kind == Bound::Kind::NegInf) {
    if (a.kind == b.kind) return 0;
    return a.kind == Bound::Kind::NegInf ? -1 : 1;
  }
  const int cmp = order.compare(a.value, b.value);
  if (cmp != 0) return cmp;
  // Same value: exclusive upper bound is tighter than inclusive.
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? 1 : -1;
}

}  // namespace

ValueRange ValueRange::point(std::string value) {
  return {Bound::at(value, true), Bound::at(std::move(value), true)};
}

ValueRange ValueRange::at_least(std::string value) {
  return {Bound::at(std::move(value), true), Bound::pos_inf()};
}

ValueRange ValueRange::at_most(std::string value) {
  return {Bound::neg_inf(), Bound::at(std::move(value), true)};
}

ValueRange ValueRange::less_than(std::string value) {
  return {Bound::neg_inf(), Bound::at(std::move(value), false)};
}

ValueRange ValueRange::greater_than(std::string value) {
  return {Bound::at(std::move(value), false), Bound::pos_inf()};
}

ValueRange ValueRange::prefix(std::string_view p) {
  if (auto upper = prefix_upper_bound(p)) {
    return {Bound::at(std::string(p), true), Bound::at(std::move(*upper), false)};
  }
  return {Bound::at(std::string(p), true), Bound::pos_inf()};
}

bool ValueRange::empty(const ValueOrder& order) const {
  if (lo_.kind == Bound::Kind::PosInf || hi_.kind == Bound::Kind::NegInf) return true;
  if (lo_.kind != Bound::Kind::Value || hi_.kind != Bound::Kind::Value) return false;
  const int cmp = order.compare(lo_.value, hi_.value);
  if (cmp > 0) return true;
  if (cmp < 0) return false;
  return !(lo_.inclusive && hi_.inclusive);
}

ValueRange ValueRange::intersect(const ValueRange& other,
                                 const ValueOrder& order) const {
  const Bound& lo = compare_lower(lo_, other.lo_, order) >= 0 ? lo_ : other.lo_;
  const Bound& hi = compare_upper(hi_, other.hi_, order) <= 0 ? hi_ : other.hi_;
  return {lo, hi};
}

bool ValueRange::contains_value(std::string_view value,
                                const ValueOrder& order) const {
  if (lo_.kind == Bound::Kind::Value) {
    const int cmp = order.compare(value, lo_.value);
    if (cmp < 0 || (cmp == 0 && !lo_.inclusive)) return false;
  } else if (lo_.kind == Bound::Kind::PosInf) {
    return false;
  }
  if (hi_.kind == Bound::Kind::Value) {
    const int cmp = order.compare(value, hi_.value);
    if (cmp > 0 || (cmp == 0 && !hi_.inclusive)) return false;
  } else if (hi_.kind == Bound::Kind::NegInf) {
    return false;
  }
  return true;
}

bool ValueRange::contains_range(const ValueRange& other,
                                const ValueOrder& order) const {
  if (other.empty(order)) return true;
  return compare_lower(lo_, other.lo_, order) <= 0 &&
         compare_upper(hi_, other.hi_, order) >= 0;
}

std::optional<std::string> ValueRange::single_value(const ValueOrder& order) const {
  if (lo_.kind != Bound::Kind::Value || hi_.kind != Bound::Kind::Value) {
    return std::nullopt;
  }
  if (lo_.inclusive && hi_.inclusive && order.compare(lo_.value, hi_.value) == 0) {
    return lo_.value;
  }
  return std::nullopt;
}

std::string ValueRange::to_string() const {
  std::string out;
  switch (lo_.kind) {
    case Bound::Kind::NegInf:
      out = "(-inf";
      break;
    case Bound::Kind::Value:
      out = (lo_.inclusive ? "[" : "(") + lo_.value;
      break;
    case Bound::Kind::PosInf:
      out = "(+inf";
      break;
  }
  out += ", ";
  switch (hi_.kind) {
    case Bound::Kind::NegInf:
      out += "-inf)";
      break;
    case Bound::Kind::Value:
      out += hi_.value + (hi_.inclusive ? "]" : ")");
      break;
    case Bound::Kind::PosInf:
      out += "+inf)";
      break;
  }
  return out;
}

std::optional<std::string> prefix_upper_bound(std::string_view p) {
  std::string upper(p);
  while (!upper.empty()) {
    auto& last = upper.back();
    if (static_cast<unsigned char>(last) != 0xFF) {
      last = static_cast<char>(static_cast<unsigned char>(last) + 1);
      return upper;
    }
    upper.pop_back();
  }
  return std::nullopt;
}

}  // namespace fbdr::containment
