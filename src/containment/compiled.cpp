#include "containment/compiled.h"

#include <map>

#include "containment/value_range.h"
#include "ldap/error.h"

namespace fbdr::containment {

using ldap::Filter;
using ldap::FilterKind;
using ldap::FilterTemplate;
using ldap::Schema;
using ldap::Syntax;

namespace {

/// Which filter a symbolic expansion belongs to.
enum class Side { Inner, Outer };

/// A symbolic range bound.
struct SymBound {
  SymValue value;
  bool strict = false;
};

/// Symbolic constraints on one attribute within one conjunct.
struct SymAttr {
  std::vector<SymBound> lowers;
  std::vector<SymBound> uppers;
  bool present = false;
  bool absent = false;

  bool implies_present() const {
    return present || !lowers.empty() || !uppers.empty();
  }
};

using SymConjunct = std::map<std::string, SymAttr>;

/// Signals a template outside the compilable fragment.
struct NotCompilable {};

SymValue slot_value(Side side, std::size_t index) {
  SymValue v;
  v.kind = side == Side::Inner ? SymValue::Kind::InnerSlot
                               : SymValue::Kind::OuterSlot;
  v.slot = index;
  return v;
}

SymValue const_value(std::string text) {
  SymValue v;
  v.kind = SymValue::Kind::Const;
  v.constant = std::move(text);
  return v;
}

/// Resolves a template component: placeholder -> next slot, constant ->
/// normalized literal.
SymValue resolve_component(const std::string& component, const std::string& attr,
                           Side side, std::size_t& next_slot,
                           const Schema& schema) {
  if (component == ldap::kPlaceholder) {
    return slot_value(side, next_slot++);
  }
  return const_value(schema.normalize(attr, component));
}

void add_lower(SymConjunct& conjunct, const std::string& attr, SymValue v,
               bool strict) {
  conjunct[attr].lowers.push_back({std::move(v), strict});
}

void add_upper(SymConjunct& conjunct, const std::string& attr, SymValue v,
               bool strict) {
  conjunct[attr].uppers.push_back({std::move(v), strict});
}

SymConjunct merge(const SymConjunct& a, const SymConjunct& b) {
  SymConjunct out = a;
  for (const auto& [attr, cb] : b) {
    SymAttr& ca = out[attr];
    ca.lowers.insert(ca.lowers.end(), cb.lowers.begin(), cb.lowers.end());
    ca.uppers.insert(ca.uppers.end(), cb.uppers.begin(), cb.uppers.end());
    ca.present = ca.present || cb.present;
    ca.absent = ca.absent || cb.absent;
  }
  return out;
}

/// Symbolic DNF of a template skeleton. `next_slot` tracks placeholder
/// numbering in pre-order, matching FilterTemplate::match.
std::vector<SymConjunct> sym_dnf(const Filter& node, bool negated, Side side,
                                 std::size_t& next_slot, const Schema& schema) {
  switch (node.kind()) {
    case FilterKind::Not: {
      return sym_dnf(*node.children().front(), !negated, side, next_slot, schema);
    }
    case FilterKind::And:
    case FilterKind::Or: {
      const bool conjunctive = (node.kind() == FilterKind::And) != negated;
      std::vector<std::vector<SymConjunct>> parts;
      parts.reserve(node.children().size());
      for (const ldap::FilterPtr& child : node.children()) {
        parts.push_back(sym_dnf(*child, negated, side, next_slot, schema));
      }
      if (conjunctive) {
        std::vector<SymConjunct> result{SymConjunct{}};
        for (const auto& part : parts) {
          std::vector<SymConjunct> next;
          next.reserve(result.size() * part.size());
          for (const SymConjunct& a : result) {
            for (const SymConjunct& b : part) {
              next.push_back(merge(a, b));
            }
          }
          result = std::move(next);
        }
        return result;
      }
      std::vector<SymConjunct> out;
      for (auto& part : parts) {
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    case FilterKind::Present: {
      SymConjunct c;
      if (!negated) {
        c[node.attribute()].present = true;
      } else {
        c[node.attribute()].absent = true;
      }
      return {std::move(c)};
    }
    case FilterKind::Equality: {
      const std::string& attr = node.attribute();
      const SymValue v =
          resolve_component(node.value(), attr, side, next_slot, schema);
      if (!negated) {
        SymConjunct c;
        add_lower(c, attr, v, false);
        add_upper(c, attr, v, false);
        return {std::move(c)};
      }
      std::vector<SymConjunct> out;
      SymConjunct absent;
      absent[attr].absent = true;
      out.push_back(std::move(absent));
      SymConjunct below;
      add_upper(below, attr, v, true);  // x < v
      out.push_back(std::move(below));
      SymConjunct above;
      add_lower(above, attr, v, true);  // x > v
      out.push_back(std::move(above));
      return out;
    }
    case FilterKind::GreaterEq:
    case FilterKind::LessEq: {
      const std::string& attr = node.attribute();
      const SymValue v =
          resolve_component(node.value(), attr, side, next_slot, schema);
      const bool ge = node.kind() == FilterKind::GreaterEq;
      if (!negated) {
        SymConjunct c;
        if (ge) {
          add_lower(c, attr, v, false);  // x >= v
        } else {
          add_upper(c, attr, v, false);  // x <= v
        }
        return {std::move(c)};
      }
      std::vector<SymConjunct> out;
      SymConjunct absent;
      absent[attr].absent = true;
      out.push_back(std::move(absent));
      SymConjunct complement;
      if (ge) {
        add_upper(complement, attr, v, true);  // x < v
      } else {
        add_lower(complement, attr, v, true);  // x > v
      }
      out.push_back(std::move(complement));
      return out;
    }
    case FilterKind::Substring: {
      const std::string& attr = node.attribute();
      const ldap::SubstringPattern& pattern = node.substrings();
      // Compilable fragment: prefix-only patterns on string-ordered
      // attributes, where prefix matching is exactly a half-open range.
      if (!pattern.is_prefix_only() || schema.syntax_of(attr) == Syntax::Integer) {
        throw NotCompilable{};
      }
      SymValue p =
          resolve_component(pattern.initial, attr, side, next_slot, schema);
      SymValue succ = p;
      succ.prefix_succ = true;
      if (!negated) {
        SymConjunct c;
        add_lower(c, attr, p, false);      // x >= p
        add_upper(c, attr, succ, true);    // x < succ(p)
        return {std::move(c)};
      }
      std::vector<SymConjunct> out;
      SymConjunct absent;
      absent[attr].absent = true;
      out.push_back(std::move(absent));
      SymConjunct below;
      add_upper(below, attr, p, true);  // x < p
      out.push_back(std::move(below));
      SymConjunct above;
      add_lower(above, attr, succ, false);  // x >= succ(p)
      out.push_back(std::move(above));
      return out;
    }
  }
  throw NotCompilable{};
}

/// Resolved symbolic value: a concrete string or +infinity (from succ
/// overflow).
using Resolved = std::optional<std::string>;

Resolved resolve(const SymValue& v, const std::vector<std::string>& inner,
                 const std::vector<std::string>& outer) {
  const std::string* base = nullptr;
  switch (v.kind) {
    case SymValue::Kind::Const:
      base = &v.constant;  // normalized at compile time
      break;
    case SymValue::Kind::InnerSlot:
      if (v.slot >= inner.size()) {
        throw ldap::ProtocolError("compiled containment: inner slot out of range");
      }
      base = &inner[v.slot];  // pre-normalized (BoundTemplate::norm_slots)
      break;
    case SymValue::Kind::OuterSlot:
      if (v.slot >= outer.size()) {
        throw ldap::ProtocolError("compiled containment: outer slot out of range");
      }
      base = &outer[v.slot];  // pre-normalized (BoundTemplate::norm_slots)
      break;
  }
  if (!v.prefix_succ) return *base;
  return prefix_upper_bound(*base);  // nullopt == +infinity
}

/// Evaluates one atom: is the interval (lower, upper) empty?
bool atom_holds(const Atom& atom, const std::vector<std::string>& inner,
                const std::vector<std::string>& outer, const Schema& schema) {
  const Resolved lower = resolve(atom.lower, inner, outer);
  const Resolved upper = resolve(atom.upper, inner, outer);
  if (!lower) return true;   // lower bound +inf: nothing fits above it
  if (!upper) return false;  // upper bound +inf: never empty via this pair
  const int cmp = schema.compare(atom.attr, *upper, *lower);
  if (cmp < 0) return true;
  if (cmp > 0) return false;
  return atom.lower_strict || atom.upper_strict;
}

}  // namespace

std::string SymValue::to_string() const {
  std::string out;
  switch (kind) {
    case Kind::Const:
      out = "'" + constant + "'";
      break;
    case Kind::InnerSlot:
      out = "q" + std::to_string(slot);
      break;
    case Kind::OuterSlot:
      out = "s" + std::to_string(slot);
      break;
  }
  return prefix_succ ? "succ(" + out + ")" : out;
}

std::string Atom::to_string() const {
  const char* op = (lower_strict || upper_strict) ? "<=" : "<";
  return "(" + upper.to_string() + " " + op + " " + lower.to_string() + ")@" + attr;
}

std::optional<CompiledContainment> CompiledContainment::compile(
    const FilterTemplate& inner, const FilterTemplate& outer,
    const Schema& schema) {
  CompiledContainment compiled;
  std::vector<SymConjunct> dnf_inner;
  std::vector<SymConjunct> dnf_not_outer;
  try {
    std::size_t inner_slot = 0;
    dnf_inner = sym_dnf(*inner.skeleton(), /*negated=*/false, Side::Inner,
                        inner_slot, schema);
    std::size_t outer_slot = 0;
    dnf_not_outer = sym_dnf(*outer.skeleton(), /*negated=*/true, Side::Outer,
                            outer_slot, schema);
  } catch (const NotCompilable&) {
    return std::nullopt;
  }

  for (const SymConjunct& a : dnf_inner) {
    for (const SymConjunct& b : dnf_not_outer) {
      const SymConjunct conjunct = merge(a, b);
      // Build the disjunction of conditions under which this conjunct is
      // inconsistent.
      bool statically_true = false;
      std::vector<Atom> clause;
      for (const auto& [attr, c] : conjunct) {
        if (c.absent) {
          if (c.implies_present()) {
            statically_true = true;
            break;
          }
          const ldap::AttributeType* type = schema.find(attr);
          if (type && type->required) {
            statically_true = true;
            break;
          }
        }
        for (const SymBound& lo : c.lowers) {
          for (const SymBound& hi : c.uppers) {
            Atom atom;
            atom.attr = attr;
            atom.lower = lo.value;
            atom.lower_strict = lo.strict;
            atom.upper = hi.value;
            atom.upper_strict = hi.strict;
            // Constant-fold atoms over two literals.
            if (atom.lower.kind == SymValue::Kind::Const &&
                atom.upper.kind == SymValue::Kind::Const) {
              if (atom_holds(atom, {}, {}, schema)) {
                statically_true = true;
              }
              continue;  // either satisfied the clause or is constant-false
            }
            // Fold atoms whose two sides are the same symbolic value: the
            // interval [v, v] is empty iff a bound is strict.
            if (atom.lower.kind == atom.upper.kind &&
                atom.lower.slot == atom.upper.slot &&
                atom.lower.constant == atom.upper.constant &&
                atom.lower.prefix_succ == atom.upper.prefix_succ) {
              if (atom.lower_strict || atom.upper_strict) {
                statically_true = true;
              }
              continue;
            }
            clause.push_back(std::move(atom));
          }
          if (statically_true) break;
        }
        if (statically_true) break;
      }
      if (statically_true) continue;  // conjunct always inconsistent
      if (clause.empty()) {
        // No condition can make this conjunct inconsistent: containment can
        // never hold.
        compiled.trivially_false_ = true;
        compiled.clauses_.clear();
        return compiled;
      }
      compiled.clauses_.push_back(std::move(clause));
    }
  }
  compiled.trivially_true_ = compiled.clauses_.empty();
  return compiled;
}

bool CompiledContainment::evaluate(const std::vector<std::string>& inner_slots,
                                   const std::vector<std::string>& outer_slots,
                                   const Schema& schema) const {
  if (trivially_false_) return false;
  for (const std::vector<Atom>& clause : clauses_) {
    bool satisfied = false;
    for (const Atom& atom : clause) {
      if (atom_holds(atom, inner_slots, outer_slots, schema)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::size_t CompiledContainment::atom_count() const {
  std::size_t count = 0;
  for (const auto& clause : clauses_) count += clause.size();
  return count;
}

std::string CompiledContainment::to_string() const {
  if (trivially_false_) return "FALSE";
  if (clauses_.empty()) return "TRUE";
  std::string out;
  for (const auto& clause : clauses_) {
    if (!out.empty()) out += " & ";
    std::string disj;
    for (const Atom& atom : clause) {
      if (!disj.empty()) disj += " | ";
      disj += atom.to_string();
    }
    out += "[" + disj + "]";
  }
  return out;
}

}  // namespace fbdr::containment
