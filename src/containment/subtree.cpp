#include "containment/subtree.h"

namespace fbdr::containment {

std::string ReplicationContext::to_string() const {
  std::string out = "suffix='" + suffix.to_string() + "'";
  for (const ldap::Dn& r : referrals) {
    out += " referral='" + r.to_string() + "'";
  }
  return out;
}

bool subtree_is_contained(const ldap::Dn& base,
                          const std::vector<ReplicationContext>& contexts) {
  // Direct transcription of the paper's algorithm. For each context Ci with
  // suffix Si and referrals Rj: the base is contained when Si = b, or Si is
  // an ancestor of b and no referral Rj is b or an ancestor of b.
  for (const ReplicationContext& context : contexts) {
    if (context.suffix == base) {
      return true;
    }
    if (!is_suffix(context.suffix, base)) {
      continue;
    }
    bool cut_off = false;
    for (const ldap::Dn& referral : context.referrals) {
      if (referral == base || is_suffix(referral, base)) {
        cut_off = true;
        break;
      }
    }
    if (!cut_off) {
      return true;
    }
  }
  return false;
}

}  // namespace fbdr::containment
