#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ldap/query_template.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// A symbolic assertion value appearing in a compiled containment condition:
/// a constant from a template, or a placeholder slot of the inner (incoming)
/// or outer (stored) filter. `prefix_succ` wraps the resolved value in
/// prefix_upper_bound (used for prefix-substring ranges); resolution then may
/// yield "+infinity" (nullopt).
struct SymValue {
  enum class Kind { Const, InnerSlot, OuterSlot };

  Kind kind = Kind::Const;
  std::size_t slot = 0;     // for slot kinds
  std::string constant;     // for Kind::Const (already normalized)
  bool prefix_succ = false;

  std::string to_string() const;
};

/// One atom of the compiled CNF (paper Proposition 2: "each simple predicate
/// of the form (a <= b) where a, b are assertion values"). The atom asserts
/// that the interval bounded below by `lower` and above by `upper` is empty:
///   empty  <=>  upper < lower,  or  upper == lower and either bound strict.
struct Atom {
  std::string attr;  // attribute whose ordering rule applies
  SymValue lower;
  bool lower_strict = false;
  SymValue upper;
  bool upper_strict = false;

  std::string to_string() const;
};

/// A compiled containment condition for an ordered template pair
/// (inner, outer): a CNF whose clauses each assert that one conjunct of
/// inner AND NOT outer is inconsistent. Compile once per template pair,
/// evaluate in O(#atoms) value comparisons per query (§3.4.2: "for all the
/// remaining cross template comparisons, conditions for containment can be
/// computed apriori").
class CompiledContainment {
 public:
  /// Compiles the condition for `inner` contained-in `outer`. Returns nullopt
  /// when the template pair is outside the compilable fragment (non-prefix
  /// substring assertions); callers then fall back to the general engine.
  static std::optional<CompiledContainment> compile(
      const ldap::FilterTemplate& inner, const ldap::FilterTemplate& outer,
      const ldap::Schema& schema = ldap::Schema::default_instance());

  /// Evaluates the condition against concrete slot bindings. Slot values
  /// must be schema-normalized already (BoundTemplate::norm_slots carries
  /// them in that form) — evaluation performs only comparisons, never
  /// normalization.
  bool evaluate(const std::vector<std::string>& inner_slots,
                const std::vector<std::string>& outer_slots,
                const ldap::Schema& schema = ldap::Schema::default_instance()) const;

  /// True when the condition reduced to a constant at compile time.
  bool trivially_true() const noexcept { return trivially_true_; }
  bool trivially_false() const noexcept { return trivially_false_; }

  std::size_t clause_count() const noexcept { return clauses_.size(); }
  std::size_t atom_count() const;

  /// Human-readable CNF for diagnostics.
  std::string to_string() const;

 private:
  std::vector<std::vector<Atom>> clauses_;  // conjunction of disjunctions
  bool trivially_true_ = false;
  bool trivially_false_ = false;
};

}  // namespace fbdr::containment
