#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ldap/schema.h"

namespace fbdr::containment {

/// Comparator over assertion values of one attribute, as defined by the
/// schema's ordering rule. Values handed to it must already be normalized.
class ValueOrder {
 public:
  ValueOrder(const ldap::Schema& schema, std::string attr)
      : schema_(&schema), attr_(std::move(attr)) {}

  int compare(std::string_view a, std::string_view b) const {
    return schema_->compare(attr_, a, b);
  }
  const std::string& attribute() const noexcept { return attr_; }
  const ldap::Schema& schema() const noexcept { return *schema_; }

 private:
  const ldap::Schema* schema_;
  std::string attr_;
};

/// One end of a range: -inf, a value (inclusive or exclusive), or +inf.
struct Bound {
  enum class Kind { NegInf, Value, PosInf };

  Kind kind = Kind::NegInf;
  std::string value;      // meaningful when kind == Value
  bool inclusive = true;  // meaningful when kind == Value

  static Bound neg_inf() { return {Kind::NegInf, {}, true}; }
  static Bound pos_inf() { return {Kind::PosInf, {}, true}; }
  static Bound at(std::string value, bool inclusive) {
    return {Kind::Value, std::move(value), inclusive};
  }
};

/// An interval over one attribute's value domain, as imposed by equality and
/// range predicates (paper §4.1: "a possibly empty range for an attribute xj
/// imposed by the predicates of Bi is (axj, bxj] or [axj, bxj)").
///
/// Values stored in bounds must be schema-normalized; all comparisons go
/// through the attribute's ValueOrder.
class ValueRange {
 public:
  /// The full domain (-inf, +inf).
  ValueRange() = default;
  ValueRange(Bound lo, Bound hi) : lo_(std::move(lo)), hi_(std::move(hi)) {}

  static ValueRange all() { return {}; }
  static ValueRange point(std::string value);            // [v, v]
  static ValueRange at_least(std::string value);         // [v, +inf)
  static ValueRange at_most(std::string value);          // (-inf, v]
  static ValueRange less_than(std::string value);        // (-inf, v)
  static ValueRange greater_than(std::string value);     // (v, +inf)

  /// The range of strings having prefix `p` under lexicographic byte order:
  /// [p, succ(p)) where succ increments the last non-0xFF byte. Returns the
  /// half-open interval; when p is all 0xFF bytes the range is [p, +inf).
  static ValueRange prefix(std::string_view p);

  const Bound& lo() const noexcept { return lo_; }
  const Bound& hi() const noexcept { return hi_; }

  bool empty(const ValueOrder& order) const;

  /// Intersection of two ranges (tightest bounds win).
  ValueRange intersect(const ValueRange& other, const ValueOrder& order) const;

  bool contains_value(std::string_view value, const ValueOrder& order) const;

  /// True when every value in `other` lies in `*this`. An empty `other` is
  /// contained in anything.
  bool contains_range(const ValueRange& other, const ValueOrder& order) const;

  /// When the range admits exactly one value ([v, v]), returns it.
  std::optional<std::string> single_value(const ValueOrder& order) const;

  /// Debug form like "[04, 05)".
  std::string to_string() const;

 private:
  Bound lo_ = Bound::neg_inf();
  Bound hi_ = Bound::pos_inf();
};

/// Smallest string strictly greater than every string with prefix `p` under
/// byte-lexicographic order, or nullopt when no such string exists (p is all
/// 0xFF). "04" -> "05", "a\xff" -> "b".
std::optional<std::string> prefix_upper_bound(std::string_view p);

}  // namespace fbdr::containment
