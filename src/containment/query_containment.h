#pragma once

#include <functional>

#include "ldap/query.h"
#include "ldap/schema.h"

namespace fbdr::containment {

/// Decides whether the (base, scope) region of `q` falls completely inside
/// the region of `qs` — conditions the paper's QC algorithm checks before
/// looking at attributes and filters:
///   - same base: scope of qs must cover scope of q (ss >= s),
///   - otherwise bs must be an ancestor of b, and either ss = SUBTREE, or
///     ss = SINGLE LEVEL with s covered and bs the parent of b.
bool region_contained(const ldap::Query& q, const ldap::Query& qs);

/// Full semantic query containment (paper §4, algorithm QC): region
/// containment, attribute-subset, then filter containment. The filter check
/// is pluggable so callers can select Proposition 1 (general), Proposition 3
/// (same template) or a compiled Proposition 2 condition.
bool query_contained(
    const ldap::Query& q, const ldap::Query& qs,
    const std::function<bool(const ldap::Filter&, const ldap::Filter&)>&
        filter_check);

/// Convenience overload using the general containment engine.
bool query_contained(
    const ldap::Query& q, const ldap::Query& qs,
    const ldap::Schema& schema = ldap::Schema::default_instance());

}  // namespace fbdr::containment
