#include "resync/protocol.h"

namespace fbdr::resync {

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::Poll:
      return "poll";
    case Mode::Persist:
      return "persist";
    case Mode::SyncEnd:
      return "sync_end";
  }
  return "unknown";
}

std::string ReSyncControl::to_string() const {
  return "(" + resync::to_string(mode) + ", " +
         (cookie.empty() ? "null" : cookie) +
         (reconcile ? ", reconcile r" + std::to_string(reconcile->round) : "") +
         ")";
}

std::size_t ReconcileRequest::approx_bytes() const {
  // Fixed header: round + root digest + entry count.
  std::size_t total = 20;
  total += buckets.size() * 20;  // bucket index + digest + count
  for (const sync::EntryFingerprint& fp : fingerprints) {
    total += fp.dn.to_string().size() + 8;
  }
  return total;
}

std::size_t ReconcileResponse::approx_bytes() const {
  return 8 + need_buckets.size() * 4;
}

std::string to_string(Action action) {
  switch (action) {
    case Action::Add:
      return "add";
    case Action::Modify:
      return "mod";
    case Action::Delete:
      return "delete";
    case Action::Retain:
      return "retain";
  }
  return "unknown";
}

std::size_t EntryPdu::approx_bytes(std::size_t entry_padding) const {
  if (entry) return entry->approx_size_bytes(entry_padding);
  return dn.to_string().size();
}

std::string EntryPdu::to_string() const {
  return dn.to_string() + ", " + resync::to_string(action);
}

std::size_t ReSyncResponse::entries_sent() const {
  std::size_t count = 0;
  for (const EntryPdu& pdu : pdus) {
    if (pdu.action == Action::Add || pdu.action == Action::Modify) ++count;
  }
  return count;
}

std::size_t ReSyncResponse::dns_sent() const {
  return pdus.size() - entries_sent();
}

std::vector<EntryPdu> to_pdus(const sync::UpdateBatch& batch) {
  std::vector<EntryPdu> pdus;
  pdus.reserve(batch.adds.size() + batch.mods.size() + batch.deletes.size() +
               batch.retains.size());
  for (const ldap::EntryPtr& entry : batch.adds) {
    pdus.push_back({Action::Add, entry->dn(), entry});
  }
  for (const ldap::EntryPtr& entry : batch.mods) {
    pdus.push_back({Action::Modify, entry->dn(), entry});
  }
  for (const ldap::Dn& dn : batch.deletes) {
    pdus.push_back({Action::Delete, dn, nullptr});
  }
  for (const ldap::Dn& dn : batch.retains) {
    pdus.push_back({Action::Retain, dn, nullptr});
  }
  return pdus;
}

sync::UpdateBatch from_pdus(const std::vector<EntryPdu>& pdus, bool full_reload,
                            bool complete_enumeration, bool more,
                            bool continued) {
  sync::UpdateBatch batch;
  batch.full_reload = full_reload;
  batch.complete_enumeration = complete_enumeration;
  batch.more = more;
  batch.continued = continued;
  for (const EntryPdu& pdu : pdus) {
    switch (pdu.action) {
      case Action::Add:
        batch.adds.push_back(pdu.entry);
        break;
      case Action::Modify:
        batch.mods.push_back(pdu.entry);
        break;
      case Action::Delete:
        batch.deletes.push_back(pdu.dn);
        break;
      case Action::Retain:
        batch.retains.push_back(pdu.dn);
        break;
    }
  }
  return batch;
}

sync::UpdateBatch to_batch(const ReSyncResponse& response) {
  return from_pdus(response.pdus, response.full_reload,
                   response.complete_enumeration, response.more,
                   response.continued);
}

}  // namespace fbdr::resync
