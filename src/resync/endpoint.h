#pragma once

#include <cstdint>
#include <string>

#include "ldap/query.h"
#include "resync/protocol.h"

namespace fbdr::resync {

/// Anything a replica can run a ReSync update session against: the
/// enterprise master (ReSyncMaster over a DirectoryServer) or a relay
/// replica re-serving its locally replicated content downstream
/// (topology::RelayNode). net::Channel implementations carry exchanges to
/// an endpoint without knowing which of the two answers, which is what
/// lets sessions be stacked into multi-hop distribution trees.
class ReSyncEndpoint {
 public:
  virtual ~ReSyncEndpoint() = default;

  /// Handles one resync search request (§5.2 modes poll/persist/sync_end).
  virtual ReSyncResponse handle(const ldap::Query& query,
                                const ReSyncControl& control) = 0;

  /// Client-initiated abandon of a persistent search.
  virtual void abandon(const std::string& cookie) = 0;

  /// Advances the endpoint's logical clock (session admin limits keep
  /// running while clients back off on the link).
  virtual void tick(std::uint64_t delta = 1) = 0;

  /// Models a crash/restart losing all in-memory session state. On a relay
  /// this also bumps the cookie epoch so descendants fall back to full
  /// reloads instead of resuming against a torn store.
  virtual void reset() = 0;

  /// Address of this endpoint ("ldap://master", "relay://site-3"), used as
  /// the referral target when a downstream query is not admitted.
  virtual const std::string& url() const = 0;
};

}  // namespace fbdr::resync
