#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fbdr::resync {

/// Resource budgets for a ReSync master (the enterprise root or a relay's
/// downstream-facing master). Every limit defaults to 0 = unlimited, which
/// reproduces the ungoverned behavior exactly; a production deployment sets
/// all of them so that no single slow, wedged or absent consumer can grow
/// master-side state without bound (§5: the protocol is explicitly designed
/// to survive incomplete history via the retain-based enumeration of
/// equation (3)).
struct ResourceLimits {
  /// Admission control: initial requests beyond this many live sessions are
  /// answered with a protocol-level busy result (no session is created); the
  /// client retries with backoff.
  std::size_t max_sessions = 0;

  /// Per-session history budget, in pending events (complete history) or
  /// touched DNs (degraded history). A poll session exceeding it is degraded:
  /// its event history is dropped and its next poll answers with the
  /// retain-based complete enumeration of equation (3). Persist sessions are
  /// exempt — their history drains on every pump.
  std::size_t max_session_history = 0;

  /// Global history budget across all sessions. When the total exceeds it,
  /// the largest poll sessions are degraded (and, if already degraded,
  /// collapsed to ship-everything mode) until the total fits again.
  std::size_t max_total_history = 0;

  /// Per-session replay-cache budget in approximate entry-body bytes. A
  /// cached last response whose bodies exceed it is stripped; a duplicated
  /// poll is then answered with a fresh complete enumeration instead of the
  /// verbatim replay (convergent either way; see master.cpp).
  std::size_t max_replay_bytes = 0;

  /// Response paging: a poll (or initial) response carries at most this many
  /// PDUs; the remainder is held server-side and fetched with continuation
  /// polls under the ordinary replay-safe cookie sequence. 0 = unpaged.
  std::size_t max_page_entries = 0;

  /// Slow-poller deadline in logical ticks: a poll session idle longer is
  /// evicted by tick() and its cookie goes stale (the client heals through
  /// the existing StaleCookieError full-reload path). Combines with the admin
  /// session time limit; the tighter of the two wins.
  std::uint64_t poll_deadline_ticks = 0;

  /// Retention horizon for the master's change journal, in records. The
  /// journal self-trims past it; a master that pumps after its window was
  /// compacted away rebases every session from the DIT (see
  /// ReSyncMaster::pump). 0 = keep everything.
  std::size_t journal_retention_records = 0;

  /// Cap on concurrent in-flight reconciliation walks (round 1 answered,
  /// round 2 pending). An offer beyond the cap is answered with a fallback
  /// full reload instead of holding more provisional state. 0 = unlimited.
  std::size_t max_pending_reconciles = 0;

  /// True when any limit is set (the master runs governed).
  bool any() const noexcept {
    return max_sessions != 0 || max_session_history != 0 ||
           max_total_history != 0 || max_replay_bytes != 0 ||
           max_page_entries != 0 || poll_deadline_ticks != 0 ||
           journal_retention_records != 0 || max_pending_reconciles != 0;
  }
};

/// What the governor actually did — the overload observability counters
/// (cumulative; surfaced per hop through topology::NodeHealth).
struct GovernorStats {
  std::uint64_t sessions_rejected_busy = 0;  // admission-control bounces
  std::uint64_t sessions_degraded = 0;       // forced to equation (3)
  std::uint64_t histories_collapsed = 0;     // degraded history overflowed too
  std::uint64_t sessions_evicted = 0;        // dropped past the poll deadline
  std::uint64_t pages_served = 0;            // continuation pages shipped
  std::uint64_t replay_caches_stripped = 0;  // replay bodies dropped
  std::uint64_t compaction_rebases = 0;      // sessions rebased after a journal gap
  std::uint64_t reconcile_walks = 0;          // round-1 walks answered
  std::uint64_t reconciles_completed = 0;     // healed via digest diff/in-sync
  std::uint64_t reconcile_fallbacks = 0;      // diverged/capped -> full reload
  std::uint64_t reconcile_entries_shipped = 0;  // diff PDUs shipped by walks

  /// Folds a per-shard counter delta into this (the sharded pump accumulates
  /// parallel-phase counters shard-locally and merges them at the barrier, so
  /// totals are deterministic regardless of thread interleaving).
  void merge(const GovernorStats& other) noexcept {
    sessions_rejected_busy += other.sessions_rejected_busy;
    sessions_degraded += other.sessions_degraded;
    histories_collapsed += other.histories_collapsed;
    sessions_evicted += other.sessions_evicted;
    pages_served += other.pages_served;
    replay_caches_stripped += other.replay_caches_stripped;
    compaction_rebases += other.compaction_rebases;
    reconcile_walks += other.reconcile_walks;
    reconciles_completed += other.reconciles_completed;
    reconcile_fallbacks += other.reconcile_fallbacks;
    reconcile_entries_shipped += other.reconcile_entries_shipped;
  }

  std::string to_string() const;
};

/// Policy + accounting layer for a governed ReSync master: holds the limits,
/// answers the enforcement questions the master's hot paths ask, and keeps
/// the overload counters. Pure decisions — all state mutation stays in
/// ReSyncMaster, which consults the governor at each enforcement point
/// (admission, history growth, replay caching, response assembly, expiry).
class ResourceGovernor {
 public:
  void set_limits(ResourceLimits limits) { limits_ = limits; }
  const ResourceLimits& limits() const noexcept { return limits_; }

  bool admits(std::size_t live_sessions) const noexcept {
    return limits_.max_sessions == 0 || live_sessions < limits_.max_sessions;
  }

  bool over_session_history(std::size_t units) const noexcept {
    return limits_.max_session_history != 0 &&
           units > limits_.max_session_history;
  }

  bool over_total_history(std::size_t units) const noexcept {
    return limits_.max_total_history != 0 && units > limits_.max_total_history;
  }

  bool over_replay_bytes(std::size_t bytes) const noexcept {
    return limits_.max_replay_bytes != 0 && bytes > limits_.max_replay_bytes;
  }

  /// Page size for response assembly (0 = unpaged).
  std::size_t page_size() const noexcept { return limits_.max_page_entries; }

  /// Effective idle deadline given the admin time limit: the tighter of the
  /// two non-zero values (0 when both are unset — no expiry).
  std::uint64_t effective_deadline(std::uint64_t admin_limit) const noexcept {
    const std::uint64_t deadline = limits_.poll_deadline_ticks;
    if (admin_limit == 0) return deadline;
    if (deadline == 0) return admin_limit;
    return deadline < admin_limit ? deadline : admin_limit;
  }

  GovernorStats& stats() noexcept { return stats_; }
  const GovernorStats& stats() const noexcept { return stats_; }

 private:
  ResourceLimits limits_;
  GovernorStats stats_;
};

}  // namespace fbdr::resync
