#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbdr::resync {

/// A tiny persistent work crew for ReSyncMaster::pump(): run(jobs, job)
/// executes job(0..jobs-1) across the pool's worker threads and blocks until
/// every index completed (a full barrier). Indices are claimed through an
/// atomic cursor, so any worker may process any shard, but each shard is
/// processed exactly once per run — and by a single thread, which is what
/// makes shard-local state (sessions, router, cache) safe without locks.
///
/// The pool exists because pump() is called at tick frequency: spawning
/// threads per pump would dominate the work at small batch sizes. Workers
/// park on a condition variable between runs.
///
/// run() must not be called concurrently with itself (the master's pump is
/// serial with respect to the request path, which this mirrors). A job that
/// throws does not take the pool down: the first exception is captured and
/// rethrown from run() after the barrier.
class PumpPool {
 public:
  explicit PumpPool(std::size_t threads);
  ~PumpPool();

  PumpPool(const PumpPool&) = delete;
  PumpPool& operator=(const PumpPool&) = delete;

  /// Runs job(i) for every i in [0, jobs) and waits for completion. With no
  /// workers (threads == 0) or a single job, runs inline on the caller.
  void run(std::size_t jobs, const std::function<void(std::size_t)>& job);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // wakes workers on a new generation
  std::condition_variable done_cv_;  // wakes run() when all workers finished
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobs_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t finished_ = 0;  // workers done with the current generation
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fbdr::resync
