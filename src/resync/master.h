#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stats.h"
#include "resync/endpoint.h"
#include "resync/governor.h"
#include "resync/protocol.h"
#include "resync/pump_pool.h"
#include "server/directory_server.h"
#include "sync/change_router.h"
#include "sync/query_session.h"

namespace fbdr::resync {

/// Server-side handling of the ReSync protocol (§5.2):
///
///  (i)   null cookie: initial request of an update session — the entire
///        content is sent;
///  (ii)  otherwise the cookie identifies the session and accumulated
///        content updates (session history) are sent;
///  (iii) mode "persist": the connection is kept open and further change
///        notifications are pushed;
///  (iv)  mode "poll": a cookie to resume the session is returned;
///  (v)   mode "sync_end" (or abandoning a persistent search) ends the
///        session; idle sessions time out after an admin limit.
///
/// Drive it with handle() for requests, pump() after applying master updates
/// (delivers persist notifications), and tick()/expire_sessions() for the
/// admin time limit.
///
/// Cookies are replay-safe: each poll cookie embeds a per-session monotonic
/// sequence number ("rs-<id>#<seq>"). A duplicated or retried poll (same
/// sequence as the last answered one) is re-answered from a last-response
/// cache without touching session history, so lossy transports can retry
/// idempotently; an out-of-sequence poll is rejected. reset() models a
/// master restart that loses all session state (§5.2).
///
/// Scaling (DESIGN.md §13): sessions are partitioned into N shards by a hash
/// of the session id. Each shard owns its sessions, its own ChangeRouter
/// indexes, normalized-value cache, expiry queue and dirty-session list —
/// pump() routes the journal batch through every shard independently, so the
/// shards can run on a thread pool without any cross-shard locking.
/// Governor accounting from the parallel phase lands in per-shard counter
/// deltas folded at the pump barrier. The default (shards=1, threads=0) is
/// the bit-identical serial master; any shard/thread combination produces
/// the same per-session behavior (see tests/resync_shard_equivalence_test).
class ReSyncMaster : public ReSyncEndpoint {
 public:
  /// Sink receiving pushed notifications for persist-mode sessions.
  using NotificationSink =
      std::function<void(const std::string& cookie, const std::vector<EntryPdu>&)>;

  explicit ReSyncMaster(server::DirectoryServer& master);

  /// Installs the resource budgets (see ResourceLimits; all-zero = the
  /// ungoverned default). The journal retention horizon is applied to the
  /// served directory's change journal immediately.
  void set_resource_limits(const ResourceLimits& limits);
  const ResourceLimits& resource_limits() const noexcept {
    return governor_.limits();
  }

  /// What the governor did so far (cumulative; survives reset()).
  const GovernorStats& governor_stats() const noexcept {
    return governor_.stats();
  }

  /// Partitions sessions into `shards` hash partitions, each with its own
  /// router indexes, caches, expiry queue and dirty list (DESIGN.md §13).
  /// Must be called while no sessions are live (typically right after
  /// construction or a reset()); throws std::logic_error otherwise — live
  /// router registrations cannot be rehashed in place. shards=1 (the
  /// default) is the exact serial master.
  void set_pump_shards(std::size_t shards);
  std::size_t pump_shards() const noexcept { return shards_.size(); }

  /// Worker threads driving the shards through pump(). 0 (the default) runs
  /// every shard inline on the caller — fully deterministic serial mode.
  /// With t > 0 a persistent PumpPool of t threads processes shards
  /// concurrently; each shard is still handled by exactly one thread per
  /// pump, so shard-local state needs no locks. Takes effect on the next
  /// pump().
  void set_pump_threads(std::size_t threads);
  std::size_t pump_threads() const noexcept { return pump_threads_; }

  /// Enables/disables reconciliation-based recovery (DESIGN.md §12). When
  /// disabled the master ignores reconcile offers entirely and answers plain
  /// initial full reloads — modelling an old master for version-gating tests.
  void set_reconcile_enabled(bool enabled) { reconcile_enabled_ = enabled; }

  /// Divergence threshold: when the estimated number of divergent entries
  /// exceeds this fraction of the content size, the walk falls back to a
  /// full reload (shipping digests plus most of the content would cost more
  /// than the reload alone). Default 0.5.
  void set_reconcile_fallback_fraction(double fraction) {
    reconcile_fallback_fraction_ = fraction;
  }

  /// In-flight reconciliation walks (round 1 answered, round 2 pending).
  std::size_t pending_reconciles() const;

  /// Admin time limit for idle poll sessions, in logical ticks: a session
  /// whose last activity is more than `ticks` ticks ago is dropped by
  /// tick(), and its cookie becomes stale. A limit of 0 — the default —
  /// disables expiry entirely: idle sessions survive any number of ticks
  /// and are only removed by sync_end, abandon or reset().
  void set_session_time_limit(std::uint64_t ticks) { time_limit_ = ticks; }

  void set_notification_sink(NotificationSink sink) { sink_ = std::move(sink); }

  /// Handles one resync search request.
  ReSyncResponse handle(const ldap::Query& query,
                        const ReSyncControl& control) override;

  /// Address of the directory server this master serves from.
  const std::string& url() const override { return master_->url(); }

  /// Feeds journal records appended since the last pump into the sessions
  /// they can affect. The journal batch is read once; every shard routes it
  /// through its own indexes (in parallel when pump threads are configured),
  /// then a serial phase pushes persist notifications in global session-id
  /// order and re-checks the global history budget.
  void pump();

  /// Disables change routing: every record fans out to every session, as the
  /// pre-routing master did. The router's holder mirror is still maintained,
  /// so routing can be re-enabled at any time. Exists for benchmarks and the
  /// routed-vs-exhaustive equivalence tests.
  void set_change_routing(bool enabled) { change_routing_ = enabled; }

  /// Sessions evaluate filters via the original AST walker instead of the
  /// compiled program (benchmark baseline only; results are identical).
  /// Applies to existing sessions and to ones created later.
  void set_legacy_eval(bool legacy);

  /// Candidate-set statistics, folded across the shard routers. candidates
  /// and exhaustive are globally meaningful sums; routed_changes counts
  /// per-shard route invocations (shards x records).
  sync::ChangeRouter::Stats routing_stats() const;

  /// Advances the logical clock and expires idle poll sessions.
  void tick(std::uint64_t delta = 1) override;

  /// Current logical time at the master.
  std::uint64_t now() const noexcept { return clock_.now(); }

  /// Models a master restart: every session (and its replay cache) is lost;
  /// outstanding cookies become unknown and replicas must recover with a
  /// full reload. The clock, cumulative counters and the shard/thread
  /// configuration survive.
  void reset() override;

  /// Client-initiated abandon of a persistent search.
  void abandon(const std::string& cookie) override;

  /// Duplicated/retried polls answered from the replay cache instead of
  /// consuming session history a second time.
  std::uint64_t replays_suppressed() const noexcept { return replays_; }

  std::size_t session_count() const noexcept;

  /// Open persist connections — the scaling concern that motivates polling
  /// ("persistent search requires a TCP connection per replicated filter").
  std::size_t open_connections() const;

  /// Total pending history events held across sessions.
  std::size_t history_size() const;

  /// Governed history accounting units across sessions: pending events for
  /// complete-history sessions plus touched keys for degraded ones.
  std::size_t history_units() const;

  /// Approximate entry-body bytes currently held by replay caches.
  std::size_t replay_cache_bytes() const;

  /// Poll sessions currently degraded to equation (3).
  std::size_t degraded_sessions() const;

  /// Traffic shipped to replicas so far (entries/DNs/bytes).
  const net::TrafficStats& traffic() const noexcept { return traffic_; }
  void reset_traffic() { traffic_.reset(); }

 private:
  struct Shard;

  struct Session {
    std::unique_ptr<sync::QuerySession> session;
    Mode mode = Mode::Poll;
    std::uint64_t last_active = 0;
    std::uint64_t next_seq = 1;    // sequence the next fresh poll must carry
    std::uint64_t last_seq = 0;    // sequence of the last answered poll
    ReSyncResponse last_response;  // replay cache for last_seq
    std::size_t replay_bytes = 0;  // entry-body bytes held by the cache
    bool replay_stripped = false;  // bodies dropped: replays re-enumerate
    std::string current_cookie;    // most recently issued cookie
    sync::ChangeRouter::Handle route = sync::ChangeRouter::kInvalidHandle;
    bool dirty = false;            // on the owning shard's dirty list
    std::string id;                // session id ("rs-<n>")
    Shard* shard = nullptr;        // owning shard (stable address)
    /// Continuation pages of a paged logical batch, drained by later polls
    /// before any new batch is computed.
    std::vector<EntryPdu> overflow;
    std::size_t overflow_pos = 0;
    bool overflow_enum = false;    // completeness flags of the paged batch
    bool overflow_reload = false;
  };

  /// One session-hash partition. Everything a pump worker touches while
  /// processing the shard lives here (or in the session objects the shard
  /// owns); the only shared inputs are immutable during pump — the journal
  /// batch, entry snapshots, schema and interner. Governor counters
  /// incremented on the parallel path accumulate in `delta` and are folded
  /// into the global stats at the pump barrier.
  struct Shard {
    std::map<std::string, Session> sessions;
    sync::ChangeRouter router;
    ldap::NormalizedValueCache cache;
    /// Router handle -> session (map nodes are pointer-stable).
    std::unordered_map<sync::ChangeRouter::Handle, Session*> by_handle;
    /// last_active at insertion -> session id, with lazy deletion: a node
    /// whose session was touched or dropped since insertion is discarded or
    /// re-inserted when it reaches the front, so tick() no longer scans
    /// every session.
    std::multimap<std::uint64_t, std::string> expiry;
    /// Sessions some record touched during the current pump: the serial
    /// push/clear phase walks exactly these instead of every session
    /// (O(dirty), not O(sessions)).
    std::vector<Session*> dirty;
    /// Parallel-phase governor counters, folded at the pump barrier.
    GovernorStats delta;

    explicit Shard(const ldap::Schema& schema) : router(schema) {}
  };

  /// One in-flight reconciliation walk: round 1 answered with the divergent
  /// bucket list, round 2 (fingerprints -> diff) pending. The provisional
  /// QuerySession is promoted to a real session when the walk completes.
  /// Walk cookies ("rc-<n>#<seq>") follow the same replay discipline as
  /// session cookies: a duplicated round-2 request is re-answered from
  /// last_response without re-running the diff.
  struct PendingReconcile {
    std::unique_ptr<sync::QuerySession> session;
    Mode mode = Mode::Poll;
    std::vector<std::uint32_t> need_buckets;
    std::uint64_t last_active = 0;
    std::uint64_t expected_seq = 2;
    std::uint64_t last_seq = 0;
    ReSyncResponse last_response;  // replay cache for last_seq
    bool completed = false;        // session promoted; only replays remain
  };

  /// Splits "rs-<id>#<seq>" into the session id and sequence number.
  /// Cookies without a '#' are pre-sequence-number legacy cookies; the poll
  /// path rejects them as stale rather than misreading them as seq 0.
  struct CookieParts {
    std::string id;
    std::uint64_t seq = 0;
    bool has_seq = false;
  };
  static CookieParts parse_cookie(const std::string& cookie);
  static std::string make_cookie(const std::string& id, std::uint64_t seq);

  std::string new_session_id();
  /// The shard owning session id `id` (stable FNV-1a hash partition).
  Shard& shard_for(const std::string& id);
  /// Locates a live session by id; iterator is end() of its shard's map
  /// when unknown.
  std::map<std::string, Session>::iterator find_session(const std::string& id,
                                                        Shard*& shard);
  /// Runs `fn` once per shard — inline when threads=0 or there is a single
  /// shard, otherwise across the pump pool.
  void run_on_shards(const std::function<void(Shard&)>& fn);
  void account(const std::vector<EntryPdu>& pdus);
  /// Feeds one record into one session and mirrors the resulting content
  /// events into the owning shard's holder index. Parallel-phase safe: all
  /// mutated state is shard-local; governor counters go to `delta`.
  void apply_change(Shard& shard, Session& session,
                    const server::ChangeRecord& record,
                    ldap::NormalizedValueCache* cache);
  /// Mirrors content events into the owning shard's holder index.
  static void mirror_events(Shard& shard, Session& session,
                            const std::vector<sync::ContentEvent>& events);
  /// Degrades (and if necessary collapses) an over-budget poll session.
  void enforce_session_history(Session& session, GovernorStats& stats);
  /// Degrades/collapses the largest poll sessions until the total history
  /// fits the global budget. Victim order is deterministic across shard
  /// counts: largest first, ties by session id.
  void enforce_global_history();
  /// Rebases one shard's sessions from the DIT after journal compaction left
  /// a gap that cannot be replayed.
  void rebase_shard(Shard& shard);
  /// Fills the response from freshly computed PDUs, spilling anything past
  /// the page size into the session's overflow queue (`more` set).
  void paginate(Session& session, std::vector<EntryPdu> pdus, bool full_reload,
                bool complete_enumeration, ReSyncResponse& response);
  /// Serves the next continuation page from the overflow queue.
  void serve_overflow(Session& session, ReSyncResponse& response);
  /// Caches the response for replays, accounting (and if over budget
  /// stripping) its entry bodies.
  void cache_response(Session& session, const ReSyncResponse& response);
  /// Unregisters the session from its shard's router (releasing holder
  /// entries) and erases it. Used by sync_end, abandon and expiry.
  void drop_session(Shard& shard, std::map<std::string, Session>::iterator it);
  /// Installs an initialized QuerySession as a live session under `id` in
  /// its hash shard: registers the router route, seeds the holder mirror
  /// from the tracked content and queues the expiry node.
  Session& adopt_session(const std::string& id,
                         std::unique_ptr<sync::QuerySession> query_session,
                         Mode mode);
  /// Common response tail: activity stamp, traffic accounting, origin time,
  /// persistence flag and the replay cache.
  void finalize(Session& session, const ReSyncControl& control,
                ReSyncResponse& response);
  /// Round 1 of a reconciliation walk: compare offered digests, answer
  /// in_sync / need_buckets / fallback (DESIGN.md §12).
  ReSyncResponse handle_reconcile_round1(const ldap::Query& query,
                                         const ReSyncControl& control);
  /// Round 2: fingerprints -> exact diff; promotes the provisional session.
  ReSyncResponse handle_reconcile_round2(PendingReconcile& pending,
                                         const CookieParts& parts,
                                         const ReSyncControl& control);
  /// Ships the full content instead of walking (cap hit or diverged too far).
  ReSyncResponse reconcile_fallback(std::unique_ptr<sync::QuerySession> qs,
                                    const ReSyncControl& control);

  server::DirectoryServer* master_;
  /// Session-hash partitions; unique_ptr keeps shard addresses stable for
  /// Session::shard back-pointers. Always at least one shard.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, PendingReconcile> pending_reconciles_;
  std::unique_ptr<PumpPool> pool_;
  NotificationSink sink_;
  net::LogicalClock clock_;
  net::TrafficStats traffic_;
  ResourceGovernor governor_;
  std::uint64_t last_pumped_seq_ = 0;
  std::uint64_t time_limit_ = 0;
  std::uint64_t cookie_counter_ = 0;
  std::uint64_t reconcile_counter_ = 0;
  std::uint64_t replays_ = 0;
  std::size_t pump_threads_ = 0;
  bool reconcile_enabled_ = true;
  double reconcile_fallback_fraction_ = 0.5;
  bool change_routing_ = true;
  bool legacy_eval_ = false;
};

}  // namespace fbdr::resync
