#include "resync/pump_pool.h"

namespace fbdr::resync {

PumpPool::PumpPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PumpPool::~PumpPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void PumpPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::size_t jobs = jobs_;
    const std::function<void(std::size_t)>* job = job_;
    lock.unlock();
    for (;;) {
      const std::size_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs) break;
      try {
        (*job)(index);
      } catch (...) {
        const std::lock_guard<std::mutex> guard(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
    lock.lock();
    if (++finished_ == workers_.size()) done_cv_.notify_one();
  }
}

void PumpPool::run(std::size_t jobs,
                   const std::function<void(std::size_t)>& job) {
  if (jobs == 0) return;
  if (workers_.empty() || jobs == 1) {
    for (std::size_t i = 0; i < jobs; ++i) job(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &job;
  jobs_ = jobs;
  cursor_.store(0, std::memory_order_relaxed);
  finished_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return finished_ == workers_.size(); });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace fbdr::resync
