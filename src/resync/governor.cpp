#include "resync/governor.h"

namespace fbdr::resync {

std::string GovernorStats::to_string() const {
  return "busy=" + std::to_string(sessions_rejected_busy) +
         " degraded=" + std::to_string(sessions_degraded) +
         " collapsed=" + std::to_string(histories_collapsed) +
         " evicted=" + std::to_string(sessions_evicted) +
         " pages=" + std::to_string(pages_served) +
         " replay_strips=" + std::to_string(replay_caches_stripped) +
         " rebases=" + std::to_string(compaction_rebases) +
         " reconcile_walks=" + std::to_string(reconcile_walks) +
         " reconciled=" + std::to_string(reconciles_completed) +
         " reconcile_fallbacks=" + std::to_string(reconcile_fallbacks) +
         " reconcile_shipped=" + std::to_string(reconcile_entries_shipped);
}

}  // namespace fbdr::resync
