#include "resync/governor.h"

namespace fbdr::resync {

std::string GovernorStats::to_string() const {
  return "busy=" + std::to_string(sessions_rejected_busy) +
         " degraded=" + std::to_string(sessions_degraded) +
         " collapsed=" + std::to_string(histories_collapsed) +
         " evicted=" + std::to_string(sessions_evicted) +
         " pages=" + std::to_string(pages_served) +
         " replay_strips=" + std::to_string(replay_caches_stripped) +
         " rebases=" + std::to_string(compaction_rebases);
}

}  // namespace fbdr::resync
