#include "resync/master.h"

#include "ldap/error.h"

namespace fbdr::resync {

using ldap::ProtocolError;

ReSyncMaster::ReSyncMaster(server::DirectoryServer& master)
    : master_(&master), last_pumped_seq_(master.journal().last_seq()) {}

std::string ReSyncMaster::new_session_id() {
  return "rs-" + std::to_string(++cookie_counter_);
}

ReSyncMaster::CookieParts ReSyncMaster::parse_cookie(const std::string& cookie) {
  CookieParts parts;
  const std::size_t hash = cookie.rfind('#');
  if (hash == std::string::npos) {
    parts.id = cookie;  // legacy/foreign cookie: no sequence number
    return parts;
  }
  parts.id = cookie.substr(0, hash);
  try {
    parts.seq = std::stoull(cookie.substr(hash + 1));
  } catch (const std::exception&) {
    throw ProtocolError("malformed resync cookie '" + cookie + "'");
  }
  return parts;
}

std::string ReSyncMaster::make_cookie(const std::string& id, std::uint64_t seq) {
  return id + "#" + std::to_string(seq);
}

void ReSyncMaster::account(const std::vector<EntryPdu>& pdus) {
  for (const EntryPdu& pdu : pdus) {
    if (pdu.entry) {
      traffic_.count_entry(pdu.approx_bytes());
    } else {
      traffic_.count_dn(pdu.approx_bytes());
    }
  }
}

ReSyncResponse ReSyncMaster::handle(const ldap::Query& query,
                                    const ReSyncControl& control) {
  traffic_.count_round_trip();

  if (control.mode == Mode::SyncEnd) {
    if (!control.initial()) sessions_.erase(parse_cookie(control.cookie).id);
    return {};
  }

  ReSyncResponse response;
  std::string id;
  Session* session = nullptr;

  if (control.initial()) {
    // (i) Initial request: create the session and send the whole content.
    id = new_session_id();
    Session fresh;
    fresh.session = std::make_unique<sync::QuerySession>(query, master_->schema());
    fresh.mode = control.mode;
    session = &sessions_.emplace(id, std::move(fresh)).first->second;
    const sync::UpdateBatch batch = session->session->initial(master_->dit());
    response.pdus = to_pdus(batch);
    response.full_reload = true;
    response.cookie = make_cookie(id, session->next_seq);
  } else {
    // (ii) The cookie identifies the session and carries the poll sequence
    // number; send accumulated updates.
    const CookieParts parts = parse_cookie(control.cookie);
    id = parts.id;
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw ldap::StaleCookieError("unknown or expired resync cookie '" +
                                   control.cookie + "'");
    }
    session = &it->second;
    if (parts.seq != 0 && parts.seq == session->last_seq) {
      // Duplicated or retried poll: answer from the replay cache. Session
      // history is untouched — the updates it carried are neither shipped a
      // second time into the replica's future nor lost.
      ++replays_;
      session->last_active = clock_.now();
      account(session->last_response.pdus);  // retransmission is wire traffic
      return session->last_response;
    }
    if (parts.seq != session->next_seq) {
      throw ProtocolError("out-of-sequence resync cookie '" + control.cookie +
                          "' (expected seq " + std::to_string(session->next_seq) +
                          ")");
    }
    session->mode = control.mode;
    const sync::UpdateBatch batch = incomplete_history_
                                        ? session->session->poll_with_retains()
                                        : session->session->poll();
    response.pdus = to_pdus(batch);
    response.complete_enumeration = batch.complete_enumeration;
    session->last_seq = parts.seq;
    session->next_seq = parts.seq + 1;
    response.cookie = make_cookie(id, session->next_seq);
  }

  session->last_active = clock_.now();
  account(response.pdus);

  // (iii) Persist: the connection stays open for pushed notifications.
  // (iv) Poll: the returned cookie resumes the session.
  response.persistent = control.mode == Mode::Persist;
  session->current_cookie = response.cookie;
  session->last_response = response;
  return response;
}

void ReSyncMaster::pump() {
  const auto records = master_->journal().since(last_pumped_seq_);
  for (const server::ChangeRecord* record : records) {
    for (auto& [cookie, session] : sessions_) {
      session.session->on_change(*record);
    }
    last_pumped_seq_ = record->seq;
  }
  // Push accumulated updates on persist connections immediately.
  for (auto& [id, session] : sessions_) {
    if (session.mode != Mode::Persist || !session.session->initialized()) continue;
    const sync::UpdateBatch batch = session.session->poll();
    if (batch.empty()) continue;
    const std::vector<EntryPdu> pdus = to_pdus(batch);
    account(pdus);
    session.last_active = clock_.now();
    if (sink_) sink_(session.current_cookie, pdus);
  }
}

void ReSyncMaster::tick(std::uint64_t delta) {
  clock_.advance(delta);
  if (time_limit_ == 0) return;
  // (v) Expire idle poll sessions past the admin time limit. Persist
  // sessions hold an open connection and are not expired here.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const bool idle = clock_.now() - it->second.last_active > time_limit_;
    if (idle && it->second.mode == Mode::Poll) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReSyncMaster::reset() {
  sessions_.clear();
  // The restarted master resumes journal consumption at the tail: sessions
  // created after the restart take their baseline from initial() anyway.
  last_pumped_seq_ = master_->journal().last_seq();
}

void ReSyncMaster::abandon(const std::string& cookie) {
  sessions_.erase(parse_cookie(cookie).id);
}

std::size_t ReSyncMaster::open_connections() const {
  std::size_t count = 0;
  for (const auto& [cookie, session] : sessions_) {
    if (session.mode == Mode::Persist) ++count;
  }
  return count;
}

std::size_t ReSyncMaster::history_size() const {
  std::size_t total = 0;
  for (const auto& [cookie, session] : sessions_) {
    total += session.session->pending_events();
  }
  return total;
}

}  // namespace fbdr::resync
