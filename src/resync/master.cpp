#include "resync/master.h"

#include "ldap/error.h"

namespace fbdr::resync {

using ldap::ProtocolError;

ReSyncMaster::ReSyncMaster(server::DirectoryServer& master)
    : master_(&master), last_pumped_seq_(master.journal().last_seq()) {}

std::string ReSyncMaster::new_cookie() {
  return "rs-" + std::to_string(++cookie_counter_);
}

void ReSyncMaster::account(const std::vector<EntryPdu>& pdus) {
  for (const EntryPdu& pdu : pdus) {
    if (pdu.entry) {
      traffic_.count_entry(pdu.approx_bytes());
    } else {
      traffic_.count_dn(pdu.approx_bytes());
    }
  }
}

ReSyncResponse ReSyncMaster::handle(const ldap::Query& query,
                                    const ReSyncControl& control) {
  traffic_.count_round_trip();

  if (control.mode == Mode::SyncEnd) {
    if (!control.initial()) sessions_.erase(control.cookie);
    return {};
  }

  ReSyncResponse response;
  std::string cookie = control.cookie;
  Session* session = nullptr;

  if (control.initial()) {
    // (i) Initial request: create the session and send the whole content.
    cookie = new_cookie();
    Session fresh;
    fresh.session = std::make_unique<sync::QuerySession>(query, master_->schema());
    fresh.mode = control.mode;
    session = &sessions_.emplace(cookie, std::move(fresh)).first->second;
    const sync::UpdateBatch batch = session->session->initial(master_->dit());
    response.pdus = to_pdus(batch);
    response.full_reload = true;
  } else {
    // (ii) Cookie identifies the session; send accumulated updates.
    const auto it = sessions_.find(control.cookie);
    if (it == sessions_.end()) {
      throw ProtocolError("unknown or expired resync cookie '" + control.cookie +
                          "'");
    }
    session = &it->second;
    session->mode = control.mode;
    const sync::UpdateBatch batch = incomplete_history_
                                        ? session->session->poll_with_retains()
                                        : session->session->poll();
    response.pdus = to_pdus(batch);
    response.complete_enumeration = batch.complete_enumeration;
  }

  session->last_active = clock_.now();
  account(response.pdus);

  if (control.mode == Mode::Persist) {
    // (iii) Connection stays open for pushed notifications.
    response.persistent = true;
    response.cookie = cookie;
  } else {
    // (iv) Poll: return the resumption cookie.
    response.cookie = cookie;
  }
  return response;
}

void ReSyncMaster::pump() {
  const auto records = master_->journal().since(last_pumped_seq_);
  for (const server::ChangeRecord* record : records) {
    for (auto& [cookie, session] : sessions_) {
      session.session->on_change(*record);
    }
    last_pumped_seq_ = record->seq;
  }
  // Push accumulated updates on persist connections immediately.
  for (auto& [cookie, session] : sessions_) {
    if (session.mode != Mode::Persist || !session.session->initialized()) continue;
    const sync::UpdateBatch batch = session.session->poll();
    if (batch.empty()) continue;
    const std::vector<EntryPdu> pdus = to_pdus(batch);
    account(pdus);
    session.last_active = clock_.now();
    if (sink_) sink_(cookie, pdus);
  }
}

void ReSyncMaster::tick(std::uint64_t delta) {
  clock_.advance(delta);
  if (time_limit_ == 0) return;
  // (v) Expire idle poll sessions past the admin time limit. Persist
  // sessions hold an open connection and are not expired here.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const bool idle = clock_.now() - it->second.last_active > time_limit_;
    if (idle && it->second.mode == Mode::Poll) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReSyncMaster::abandon(const std::string& cookie) { sessions_.erase(cookie); }

std::size_t ReSyncMaster::open_connections() const {
  std::size_t count = 0;
  for (const auto& [cookie, session] : sessions_) {
    if (session.mode == Mode::Persist) ++count;
  }
  return count;
}

std::size_t ReSyncMaster::history_size() const {
  std::size_t total = 0;
  for (const auto& [cookie, session] : sessions_) {
    total += session.session->pending_events();
  }
  return total;
}

}  // namespace fbdr::resync
