#include "resync/master.h"

#include "ldap/error.h"

namespace fbdr::resync {

using ldap::ProtocolError;

ReSyncMaster::ReSyncMaster(server::DirectoryServer& master)
    : master_(&master),
      router_(master.schema()),
      last_pumped_seq_(master.journal().last_seq()) {}

std::string ReSyncMaster::new_session_id() {
  return "rs-" + std::to_string(++cookie_counter_);
}

ReSyncMaster::CookieParts ReSyncMaster::parse_cookie(const std::string& cookie) {
  CookieParts parts;
  const std::size_t hash = cookie.rfind('#');
  if (hash == std::string::npos) {
    parts.id = cookie;  // legacy/foreign cookie: no sequence number
    return parts;
  }
  parts.id = cookie.substr(0, hash);
  try {
    parts.seq = std::stoull(cookie.substr(hash + 1));
  } catch (const std::exception&) {
    throw ProtocolError("malformed resync cookie '" + cookie + "'");
  }
  parts.has_seq = true;
  return parts;
}

std::string ReSyncMaster::make_cookie(const std::string& id, std::uint64_t seq) {
  return id + "#" + std::to_string(seq);
}

void ReSyncMaster::account(const std::vector<EntryPdu>& pdus) {
  for (const EntryPdu& pdu : pdus) {
    if (pdu.entry) {
      traffic_.count_entry(pdu.approx_bytes());
    } else {
      traffic_.count_dn(pdu.approx_bytes());
    }
  }
}

ReSyncResponse ReSyncMaster::handle(const ldap::Query& query,
                                    const ReSyncControl& control) {
  traffic_.count_round_trip();

  if (control.mode == Mode::SyncEnd) {
    if (!control.initial()) {
      const auto it = sessions_.find(parse_cookie(control.cookie).id);
      if (it != sessions_.end()) drop_session(it);
    }
    return {};
  }

  ReSyncResponse response;
  std::string id;
  Session* session = nullptr;

  if (control.initial()) {
    // (i) Initial request: create the session and send the whole content.
    id = new_session_id();
    Session fresh;
    fresh.session = std::make_unique<sync::QuerySession>(query, master_->schema());
    fresh.session->set_legacy_eval(legacy_eval_);
    fresh.mode = control.mode;
    session = &sessions_.emplace(id, std::move(fresh)).first->second;
    const sync::UpdateBatch batch = session->session->initial(master_->dit());
    // Register with the change router and seed its holder mirror from the
    // freshly computed content.
    session->route = router_.add_session(
        session->session->query(), &session->session->tracker().compiled_filter());
    by_handle_[session->route] = session;
    for (const auto& [key, entry] : session->session->tracker().content()) {
      router_.note_enter(session->route, key);
    }
    expiry_.emplace(clock_.now(), id);
    response.pdus = to_pdus(batch);
    response.full_reload = true;
    response.cookie = make_cookie(id, session->next_seq);
  } else {
    // (ii) The cookie identifies the session and carries the poll sequence
    // number; send accumulated updates.
    const CookieParts parts = parse_cookie(control.cookie);
    if (!parts.has_seq) {
      // A '#'-less cookie predates replay-safe sequence numbering (or came
      // from another server). Treating it as seq 0 would bypass the replay
      // cache and then fail the sequence check with a confusing
      // out-of-sequence error; reject it as stale so the replica falls back
      // to a full reload.
      throw ldap::StaleCookieError("legacy resync cookie '" + control.cookie +
                                   "' has no sequence number");
    }
    id = parts.id;
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw ldap::StaleCookieError("unknown or expired resync cookie '" +
                                   control.cookie + "'");
    }
    session = &it->second;
    if (parts.seq != 0 && parts.seq == session->last_seq) {
      // Duplicated or retried poll: answer from the replay cache. Session
      // history is untouched — the updates it carried are neither shipped a
      // second time into the replica's future nor lost.
      ++replays_;
      session->last_active = clock_.now();
      account(session->last_response.pdus);  // retransmission is wire traffic
      // Re-stamp the origin: handing back the stamp of the original
      // exchange would roll a downstream relay's root-time view backwards
      // and inflate its reported lag. The replay consumed no history, so a
      // fresh stamp is safe — anything newer still sits in the session
      // history and ships on the next genuine poll.
      session->last_response.origin_time = clock_.now();
      return session->last_response;
    }
    if (parts.seq != session->next_seq) {
      throw ProtocolError("out-of-sequence resync cookie '" + control.cookie +
                          "' (expected seq " + std::to_string(session->next_seq) +
                          ")");
    }
    session->mode = control.mode;
    const sync::UpdateBatch batch = incomplete_history_
                                        ? session->session->poll_with_retains()
                                        : session->session->poll();
    response.pdus = to_pdus(batch);
    response.complete_enumeration = batch.complete_enumeration;
    session->last_seq = parts.seq;
    session->next_seq = parts.seq + 1;
    response.cookie = make_cookie(id, session->next_seq);
  }

  session->last_active = clock_.now();
  account(response.pdus);

  // (iii) Persist: the connection stays open for pushed notifications.
  // (iv) Poll: the returned cookie resumes the session.
  // The root of a distribution tree is its own origin: the shipped state is
  // current as of this master's clock. Relays overwrite the stamp with the
  // root time learned on their last upstream sync.
  response.origin_time = clock_.now();
  response.persistent = control.mode == Mode::Persist;
  session->current_cookie = response.cookie;
  session->last_response = response;
  return response;
}

void ReSyncMaster::apply_change(Session& session,
                                const server::ChangeRecord& record,
                                ldap::NormalizedValueCache* cache) {
  const std::vector<sync::ContentEvent> events =
      session.session->on_change(record, cache);
  if (events.empty()) return;
  session.dirty = true;
  if (session.route == sync::ChangeRouter::kInvalidHandle) return;
  for (const sync::ContentEvent& event : events) {
    switch (event.transition) {
      case sync::Transition::Enter:
        router_.note_enter(session.route, event.dn.norm_key());
        break;
      case sync::Transition::Leave:
        router_.note_leave(session.route, event.dn.norm_key());
        break;
      case sync::Transition::Update:
        break;  // membership unchanged
    }
  }
}

void ReSyncMaster::pump() {
  const auto records = master_->journal().since(last_pumped_seq_);
  std::vector<sync::ChangeRouter::Handle> candidates;
  for (const server::ChangeRecord* record : records) {
    if (change_routing_) {
      candidates.clear();
      router_.route(*record, candidates, &cache_);
      for (const sync::ChangeRouter::Handle handle : candidates) {
        apply_change(*by_handle_.at(handle), *record, &cache_);
      }
    } else {
      // Exhaustive fan-out (benchmark baseline / equivalence oracle). The
      // router's holder mirror is still maintained by apply_change, so
      // routing can be switched back on afterwards.
      for (auto& [id, session] : sessions_) {
        apply_change(session, *record, nullptr);
      }
    }
    last_pumped_seq_ = record->seq;
  }
  // Push accumulated updates on persist connections immediately. Only
  // sessions some record actually touched can have anything to push.
  for (auto& [id, session] : sessions_) {
    if (!session.dirty) continue;
    session.dirty = false;
    if (session.mode != Mode::Persist || !session.session->initialized()) continue;
    const sync::UpdateBatch batch = session.session->poll();
    if (batch.empty()) continue;
    const std::vector<EntryPdu> pdus = to_pdus(batch);
    account(pdus);
    session.last_active = clock_.now();
    if (sink_) sink_(session.current_cookie, pdus);
  }
}

void ReSyncMaster::tick(std::uint64_t delta) {
  clock_.advance(delta);
  if (time_limit_ == 0) return;
  // (v) Expire idle poll sessions past the admin time limit. The expiry
  // queue is ordered by last_active-at-insertion with lazy deletion: only
  // the stalest sessions are examined, instead of scanning all of them.
  while (!expiry_.empty()) {
    const auto front = expiry_.begin();
    if (clock_.now() - front->first <= time_limit_) break;  // rest is fresher
    const auto it = sessions_.find(front->second);
    if (it == sessions_.end()) {
      expiry_.erase(front);  // dropped since insertion
      continue;
    }
    Session& session = it->second;
    if (session.mode != Mode::Poll) {
      // Persist sessions hold an open connection and are not expired here;
      // requeue at the current time so they are revisited, not rescanned.
      const std::string id = front->second;
      expiry_.erase(front);
      expiry_.emplace(clock_.now(), id);
      continue;
    }
    if (session.last_active != front->first) {
      // Touched since insertion: requeue at the true last-active time.
      const std::uint64_t last_active = session.last_active;
      const std::string id = front->second;
      expiry_.erase(front);
      expiry_.emplace(last_active, id);
      continue;
    }
    drop_session(it);
    expiry_.erase(front);
  }
}

void ReSyncMaster::drop_session(std::map<std::string, Session>::iterator it) {
  Session& session = it->second;
  if (session.route != sync::ChangeRouter::kInvalidHandle) {
    for (const auto& [key, entry] : session.session->tracker().content()) {
      router_.note_leave(session.route, key);
    }
    router_.remove_session(session.route);
    by_handle_.erase(session.route);
  }
  sessions_.erase(it);
  // Any expiry_ node for the session is discarded lazily by tick().
}

void ReSyncMaster::reset() {
  sessions_.clear();
  router_.clear();
  by_handle_.clear();
  expiry_.clear();
  cache_.clear();
  // The restarted master resumes journal consumption at the tail: sessions
  // created after the restart take their baseline from initial() anyway.
  last_pumped_seq_ = master_->journal().last_seq();
}

void ReSyncMaster::set_legacy_eval(bool legacy) {
  legacy_eval_ = legacy;
  for (auto& [id, session] : sessions_) {
    session.session->set_legacy_eval(legacy);
  }
}

void ReSyncMaster::abandon(const std::string& cookie) {
  const auto it = sessions_.find(parse_cookie(cookie).id);
  if (it != sessions_.end()) drop_session(it);
}

std::size_t ReSyncMaster::open_connections() const {
  std::size_t count = 0;
  for (const auto& [cookie, session] : sessions_) {
    if (session.mode == Mode::Persist) ++count;
  }
  return count;
}

std::size_t ReSyncMaster::history_size() const {
  std::size_t total = 0;
  for (const auto& [cookie, session] : sessions_) {
    total += session.session->pending_events();
  }
  return total;
}

}  // namespace fbdr::resync
