#include "resync/master.h"

#include <algorithm>
#include <stdexcept>

#include "ldap/error.h"

namespace fbdr::resync {

using ldap::ProtocolError;

ReSyncMaster::ReSyncMaster(server::DirectoryServer& master)
    : master_(&master),
      last_pumped_seq_(master.journal().last_seq()) {
  shards_.push_back(std::make_unique<Shard>(master.schema()));
}

std::string ReSyncMaster::new_session_id() {
  return "rs-" + std::to_string(++cookie_counter_);
}

ReSyncMaster::Shard& ReSyncMaster::shard_for(const std::string& id) {
  if (shards_.size() == 1) return *shards_.front();
  // FNV-1a: stable across builds and platforms, so a given session id lands
  // on the same shard in every run (the equivalence twin depends on the
  // partition being a pure function of the id and the shard count).
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return *shards_[hash % shards_.size()];
}

std::map<std::string, ReSyncMaster::Session>::iterator
ReSyncMaster::find_session(const std::string& id, Shard*& shard) {
  shard = &shard_for(id);
  return shard->sessions.find(id);
}

void ReSyncMaster::set_pump_shards(std::size_t shards) {
  if (shards == 0) shards = 1;
  if (shards == shards_.size()) return;
  if (session_count() != 0) {
    throw std::logic_error(
        "set_pump_shards: cannot repartition with live sessions");
  }
  shards_.clear();
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(master_->schema()));
  }
}

void ReSyncMaster::set_pump_threads(std::size_t threads) {
  pump_threads_ = threads;
  if (threads == 0) {
    pool_.reset();
  }
  // A pool of the new size is (re)created lazily on the next pump().
}

void ReSyncMaster::run_on_shards(const std::function<void(Shard&)>& fn) {
  if (pump_threads_ == 0 || shards_.size() <= 1) {
    for (const std::unique_ptr<Shard>& shard : shards_) fn(*shard);
    return;
  }
  if (!pool_ || pool_->thread_count() != pump_threads_) {
    pool_ = std::make_unique<PumpPool>(pump_threads_);
  }
  pool_->run(shards_.size(),
             [&](std::size_t index) { fn(*shards_[index]); });
}

ReSyncMaster::CookieParts ReSyncMaster::parse_cookie(const std::string& cookie) {
  CookieParts parts;
  const std::size_t hash = cookie.rfind('#');
  if (hash == std::string::npos) {
    parts.id = cookie;  // legacy/foreign cookie: no sequence number
    return parts;
  }
  parts.id = cookie.substr(0, hash);
  try {
    parts.seq = std::stoull(cookie.substr(hash + 1));
  } catch (const std::exception&) {
    throw ProtocolError("malformed resync cookie '" + cookie + "'");
  }
  parts.has_seq = true;
  return parts;
}

std::string ReSyncMaster::make_cookie(const std::string& id, std::uint64_t seq) {
  return id + "#" + std::to_string(seq);
}

void ReSyncMaster::account(const std::vector<EntryPdu>& pdus) {
  for (const EntryPdu& pdu : pdus) {
    if (pdu.entry) {
      traffic_.count_entry(pdu.approx_bytes());
    } else {
      traffic_.count_dn(pdu.approx_bytes());
    }
  }
}

ReSyncResponse ReSyncMaster::handle(const ldap::Query& query,
                                    const ReSyncControl& control) {
  traffic_.count_round_trip();

  if (control.mode == Mode::SyncEnd) {
    if (!control.initial()) {
      const CookieParts parts = parse_cookie(control.cookie);
      const auto pit = pending_reconciles_.find(parts.id);
      if (pit != pending_reconciles_.end()) {
        pending_reconciles_.erase(pit);
        return {};
      }
      Shard* shard = nullptr;
      const auto it = find_session(parts.id, shard);
      if (it != shard->sessions.end()) drop_session(*shard, it);
    }
    return {};
  }

  ReSyncResponse response;
  std::string id;
  Session* session = nullptr;

  if (control.initial()) {
    if (control.reconcile && reconcile_enabled_ &&
        control.reconcile->round == 1) {
      // The replica offers digests instead of accepting a full reload.
      return handle_reconcile_round1(query, control);
    }
    // Admission control: past the session cap no session is created; the
    // client sees a protocol-level busy result and retries with backoff.
    // (A master with reconciliation disabled lands here even for reconcile
    // offers: the response carries no reconcile field, which tells the
    // client the peer does not speak reconciliation.)
    if (!governor_.admits(session_count() + pending_reconciles())) {
      ++governor_.stats().sessions_rejected_busy;
      ReSyncResponse busy;
      busy.busy = true;
      busy.origin_time = clock_.now();
      return busy;
    }
    // (i) Initial request: create the session and send the whole content.
    auto qs = std::make_unique<sync::QuerySession>(query, master_->schema());
    qs->set_legacy_eval(legacy_eval_);
    const sync::UpdateBatch batch = qs->initial(master_->dit());
    id = new_session_id();
    session = &adopt_session(id, std::move(qs), control.mode);
    paginate(*session, to_pdus(batch), /*full_reload=*/true,
             /*complete_enumeration=*/false, response);
    response.cookie = make_cookie(id, session->next_seq);
  } else {
    // (ii) The cookie identifies the session and carries the poll sequence
    // number; send accumulated updates.
    const CookieParts parts = parse_cookie(control.cookie);
    if (!parts.has_seq) {
      // A '#'-less cookie predates replay-safe sequence numbering (or came
      // from another server). Treating it as seq 0 would bypass the replay
      // cache and then fail the sequence check with a confusing
      // out-of-sequence error; reject it as stale so the replica falls back
      // to a full reload.
      throw ldap::StaleCookieError("legacy resync cookie '" + control.cookie +
                                   "' has no sequence number");
    }
    id = parts.id;
    // Reconciliation walk cookies ("rc-<n>#<seq>") live in their own
    // namespace and never collide with session ids.
    const auto pit = pending_reconciles_.find(id);
    if (pit != pending_reconciles_.end()) {
      return handle_reconcile_round2(pit->second, parts, control);
    }
    Shard* shard = nullptr;
    const auto it = find_session(id, shard);
    if (it == shard->sessions.end()) {
      throw ldap::StaleCookieError("unknown or expired resync cookie '" +
                                   control.cookie + "'");
    }
    session = &it->second;
    if (parts.seq != 0 && parts.seq == session->last_seq) {
      // Duplicated or retried poll: answer from the replay cache. Session
      // history is untouched — the updates it carried are neither shipped a
      // second time into the replica's future nor lost.
      ++replays_;
      session->last_active = clock_.now();
      if (!session->replay_stripped) {
        account(session->last_response.pdus);  // retransmission is wire traffic
        // Re-stamp the origin: handing back the stamp of the original
        // exchange would roll a downstream relay's root-time view backwards
        // and inflate its reported lag. The replay consumed no history, so a
        // fresh stamp is safe — anything newer still sits in the session
        // history and ships on the next genuine poll.
        session->last_response.origin_time = clock_.now();
        return session->last_response;
      }
      // The cached bodies were stripped under the replay-byte budget, so a
      // verbatim replay is impossible. A complete enumeration of the current
      // content converges the replica instead, whether or not it applied the
      // original response (any newer change still sits in the session
      // history and ships as an idempotent delta on the next genuine poll).
      // Sequence state is untouched: this re-answers the same seq.
      ReSyncResponse fresh2;
      paginate(*session, to_pdus(session->session->snapshot_enumeration()),
               /*full_reload=*/false, /*complete_enumeration=*/true, fresh2);
      fresh2.cookie = make_cookie(id, session->next_seq);
      fresh2.persistent = session->mode == Mode::Persist;
      fresh2.origin_time = clock_.now();
      account(fresh2.pdus);
      cache_response(*session, fresh2);
      return fresh2;
    }
    if (parts.seq != session->next_seq) {
      throw ProtocolError("out-of-sequence resync cookie '" + control.cookie +
                          "' (expected seq " + std::to_string(session->next_seq) +
                          ")");
    }
    session->mode = control.mode;
    if (session->overflow_pos < session->overflow.size()) {
      // Drain the continuation pages of the previous logical batch before
      // computing anything new.
      serve_overflow(*session, response);
    } else {
      const sync::UpdateBatch batch = session->session->degraded()
                                          ? session->session->poll_with_retains()
                                          : session->session->poll();
      paginate(*session, to_pdus(batch), /*full_reload=*/false,
               batch.complete_enumeration, response);
    }
    session->last_seq = parts.seq;
    session->next_seq = parts.seq + 1;
    response.cookie = make_cookie(id, session->next_seq);
  }

  // (iii) Persist: the connection stays open for pushed notifications.
  // (iv) Poll: the returned cookie resumes the session.
  finalize(*session, control, response);
  return response;
}

void ReSyncMaster::finalize(Session& session, const ReSyncControl& control,
                            ReSyncResponse& response) {
  session.last_active = clock_.now();
  account(response.pdus);
  // The root of a distribution tree is its own origin: the shipped state is
  // current as of this master's clock. Relays overwrite the stamp with the
  // root time learned on their last upstream sync.
  response.origin_time = clock_.now();
  response.persistent = control.mode == Mode::Persist;
  session.current_cookie = response.cookie;
  cache_response(session, response);
}

ReSyncMaster::Session& ReSyncMaster::adopt_session(
    const std::string& id, std::unique_ptr<sync::QuerySession> query_session,
    Mode mode) {
  Shard& shard = shard_for(id);
  Session fresh;
  fresh.session = std::move(query_session);
  fresh.mode = mode;
  fresh.id = id;
  fresh.shard = &shard;
  Session& session = shard.sessions.emplace(id, std::move(fresh)).first->second;
  // Register with the shard's change router and seed its holder mirror from
  // the tracked content.
  session.route = shard.router.add_session(
      session.session->query(), &session.session->tracker().compiled_filter());
  shard.by_handle[session.route] = &session;
  for (const auto& [key, entry] : session.session->tracker().content()) {
    shard.router.note_enter(session.route, key);
  }
  shard.expiry.emplace(clock_.now(), id);
  return session;
}

std::size_t ReSyncMaster::pending_reconciles() const {
  std::size_t live = 0;
  for (const auto& [id, pending] : pending_reconciles_) {
    if (!pending.completed) ++live;
  }
  return live;
}

ReSyncResponse ReSyncMaster::reconcile_fallback(
    std::unique_ptr<sync::QuerySession> qs, const ReSyncControl& control) {
  ++governor_.stats().reconcile_fallbacks;
  const sync::UpdateBatch batch = qs->full_content_batch();
  const std::string id = new_session_id();
  Session& session = adopt_session(id, std::move(qs), control.mode);
  ReSyncResponse response;
  auto rec = std::make_shared<ReconcileResponse>();
  rec->fallback = true;
  response.reconcile = std::move(rec);
  paginate(session, to_pdus(batch), /*full_reload=*/true,
           /*complete_enumeration=*/false, response);
  response.cookie = make_cookie(id, session.next_seq);
  finalize(session, control, response);
  return response;
}

ReSyncResponse ReSyncMaster::handle_reconcile_round1(
    const ldap::Query& query, const ReSyncControl& control) {
  // A live (incomplete) walk holds a provisional session's worth of state;
  // it counts against the session cap like a session would.
  if (!governor_.admits(session_count() + pending_reconciles())) {
    ++governor_.stats().sessions_rejected_busy;
    ReSyncResponse busy;
    busy.busy = true;
    busy.origin_time = clock_.now();
    return busy;
  }
  ++governor_.stats().reconcile_walks;
  auto qs = std::make_unique<sync::QuerySession>(query, master_->schema());
  qs->set_legacy_eval(legacy_eval_);
  qs->prepare(master_->dit());
  const ReconcileRequest& offer = *control.reconcile;

  // Walk cap: rather than holding more provisional state, ship it all.
  const std::size_t walk_cap = governor_.limits().max_pending_reconciles;
  if (walk_cap != 0 && pending_reconciles() >= walk_cap) {
    return reconcile_fallback(std::move(qs), control);
  }

  const sync::ContentDigest& mine = qs->tracker().digest();
  if (offer.root_digest == mine.root() &&
      offer.entry_count == mine.entry_count()) {
    // Roots match: the replica already holds the exact content.
    ++governor_.stats().reconciles_completed;
    qs->ack_content();
    const std::string id = new_session_id();
    Session& session = adopt_session(id, std::move(qs), control.mode);
    ReSyncResponse response;
    auto rec = std::make_shared<ReconcileResponse>();
    rec->in_sync = true;
    response.reconcile = std::move(rec);
    response.cookie = make_cookie(id, session.next_seq);
    finalize(session, control, response);
    return response;
  }

  // Compare per-bucket digests; every mismatched or one-sided bucket is
  // divergent. The entry counts bound how much round 2 could ship.
  std::map<std::uint32_t, DigestPdu> theirs;
  for (const DigestPdu& bucket : offer.buckets) theirs[bucket.bucket] = bucket;
  std::vector<std::uint32_t> need;
  std::uint64_t estimate = 0;
  for (const DigestPdu& bucket : mine.bucket_digests()) {
    const auto it = theirs.find(bucket.bucket);
    if (it == theirs.end()) {
      need.push_back(bucket.bucket);
      estimate += bucket.count;
      continue;
    }
    if (it->second.digest != bucket.digest) {
      need.push_back(bucket.bucket);
      estimate += std::max(bucket.count, it->second.count);
    }
    theirs.erase(it);
  }
  for (const auto& [index, bucket] : theirs) {
    need.push_back(index);
    estimate += bucket.count;
  }
  std::sort(need.begin(), need.end());

  // Divergence threshold (DESIGN.md §12): past it, the walk would ship
  // digests plus most of the content anyway — fall back to the reload.
  const std::uint64_t total =
      std::max<std::uint64_t>(std::max<std::uint64_t>(mine.entry_count(),
                                                      offer.entry_count),
                              1);
  if (static_cast<double>(estimate) >
      reconcile_fallback_fraction_ * static_cast<double>(total)) {
    return reconcile_fallback(std::move(qs), control);
  }

  // Hold the walk; round 2 brings fingerprints for exactly these buckets.
  const std::string rcid = "rc-" + std::to_string(++reconcile_counter_);
  PendingReconcile pending;
  pending.session = std::move(qs);
  pending.mode = control.mode;
  pending.need_buckets = need;
  pending.last_active = clock_.now();
  ReSyncResponse response;
  auto rec = std::make_shared<ReconcileResponse>();
  rec->need_buckets = std::move(need);
  response.reconcile = std::move(rec);
  response.cookie = make_cookie(rcid, pending.expected_seq);
  response.origin_time = clock_.now();
  pending.last_response = response;
  pending_reconciles_.emplace(rcid, std::move(pending));
  return response;
}

ReSyncResponse ReSyncMaster::handle_reconcile_round2(
    PendingReconcile& pending, const CookieParts& parts,
    const ReSyncControl& control) {
  if (parts.seq != 0 && parts.seq == pending.last_seq) {
    // Duplicated/retried round-2 request: re-answer from the walk's replay
    // cache. The promoted session's state is untouched, so the walk cannot
    // be corrupted by retransmissions.
    ++replays_;
    pending.last_active = clock_.now();
    account(pending.last_response.pdus);
    pending.last_response.origin_time = clock_.now();
    return pending.last_response;
  }
  if (pending.completed || parts.seq != pending.expected_seq) {
    throw ProtocolError("out-of-sequence reconcile cookie '" + control.cookie +
                        "' (expected seq " +
                        std::to_string(pending.expected_seq) + ")");
  }
  if (!control.reconcile || control.reconcile->round != 2) {
    throw ProtocolError("reconcile cookie '" + control.cookie +
                        "' requires round-2 fingerprints");
  }
  const sync::UpdateBatch diff = pending.session->diff_batch(
      control.reconcile->fingerprints, pending.need_buckets);
  const std::size_t shipped =
      diff.adds.size() + diff.mods.size() + diff.deletes.size();
  const std::string id = new_session_id();
  Session& session = adopt_session(id, std::move(pending.session), pending.mode);
  session.mode = control.mode;
  ReSyncResponse response;
  // An all-false reconcile field marks "here is your diff".
  response.reconcile = std::make_shared<ReconcileResponse>();
  paginate(session, to_pdus(diff), /*full_reload=*/false,
           /*complete_enumeration=*/false, response);
  response.cookie = make_cookie(id, session.next_seq);
  finalize(session, control, response);
  ++governor_.stats().reconciles_completed;
  governor_.stats().reconcile_entries_shipped += shipped;
  pending.last_seq = parts.seq;
  pending.completed = true;
  pending.last_response = response;
  pending.last_active = clock_.now();
  return response;
}

void ReSyncMaster::paginate(Session& session, std::vector<EntryPdu> pdus,
                            bool full_reload, bool complete_enumeration,
                            ReSyncResponse& response) {
  response.full_reload = full_reload;
  response.complete_enumeration = complete_enumeration;
  const std::size_t page = governor_.page_size();
  if (page == 0 || pdus.size() <= page) {
    response.pdus = std::move(pdus);
    return;
  }
  // Spill the tail into the session's overflow queue; later polls drain it
  // page by page under the ordinary replay-safe cookie sequence. The
  // completeness flags ride along on every page; appliers act on them only
  // once the final page (`more == false`) arrived.
  session.overflow.assign(pdus.begin() + static_cast<std::ptrdiff_t>(page),
                          pdus.end());
  session.overflow_pos = 0;
  session.overflow_enum = complete_enumeration;
  session.overflow_reload = full_reload;
  pdus.resize(page);
  response.pdus = std::move(pdus);
  response.more = true;
  ++governor_.stats().pages_served;
}

void ReSyncMaster::serve_overflow(Session& session, ReSyncResponse& response) {
  const std::size_t page = governor_.page_size();
  const std::size_t remaining = session.overflow.size() - session.overflow_pos;
  const std::size_t take = page == 0 ? remaining : std::min(page, remaining);
  const auto first = session.overflow.begin() +
                     static_cast<std::ptrdiff_t>(session.overflow_pos);
  response.pdus.assign(first, first + static_cast<std::ptrdiff_t>(take));
  session.overflow_pos += take;
  response.continued = true;
  response.full_reload = session.overflow_reload;
  response.complete_enumeration = session.overflow_enum;
  if (session.overflow_pos < session.overflow.size()) {
    response.more = true;
  } else {
    session.overflow.clear();
    session.overflow.shrink_to_fit();
    session.overflow_pos = 0;
  }
  ++governor_.stats().pages_served;
}

void ReSyncMaster::cache_response(Session& session,
                                  const ReSyncResponse& response) {
  session.last_response = response;
  session.replay_stripped = false;
  session.replay_bytes = 0;
  for (const EntryPdu& pdu : response.pdus) {
    if (pdu.entry) session.replay_bytes += pdu.approx_bytes();
  }
  // Retain/delete PDUs carry no bodies and always stay cached; only entry
  // bodies past the budget are stripped (a stripped replay is answered with
  // a fresh snapshot enumeration instead). A batch mid-pagination is never
  // stripped — with paging on, every cached page is page-size-bounded.
  if (governor_.over_replay_bytes(session.replay_bytes) &&
      session.overflow_pos >= session.overflow.size()) {
    session.last_response.pdus.clear();
    session.last_response.pdus.shrink_to_fit();
    session.replay_bytes = 0;
    session.replay_stripped = true;
    ++governor_.stats().replay_caches_stripped;
  }
}

void ReSyncMaster::set_resource_limits(const ResourceLimits& limits) {
  governor_.set_limits(limits);
  master_->journal().set_retention(limits.journal_retention_records);
}

void ReSyncMaster::apply_change(Shard& shard, Session& session,
                                const server::ChangeRecord& record,
                                ldap::NormalizedValueCache* cache) {
  const std::vector<sync::ContentEvent> events =
      session.session->on_change(record, cache);
  if (events.empty()) return;
  if (!session.dirty) {
    session.dirty = true;
    shard.dirty.push_back(&session);
  }
  mirror_events(shard, session, events);
  enforce_session_history(session, shard.delta);
}

void ReSyncMaster::mirror_events(Shard& shard, Session& session,
                                 const std::vector<sync::ContentEvent>& events) {
  if (session.route == sync::ChangeRouter::kInvalidHandle) return;
  for (const sync::ContentEvent& event : events) {
    switch (event.transition) {
      case sync::Transition::Enter:
        shard.router.note_enter(session.route, event.dn.norm_key());
        break;
      case sync::Transition::Leave:
        shard.router.note_leave(session.route, event.dn.norm_key());
        break;
      case sync::Transition::Update:
        break;  // membership unchanged
    }
  }
}

void ReSyncMaster::enforce_session_history(Session& session,
                                           GovernorStats& stats) {
  // Persist sessions drain their history on every pump; only poll-session
  // histories accumulate, so only they are degraded. (The push sink also has
  // no complete-enumeration channel, so a degraded persist session could not
  // be answered exactly.)
  if (session.mode != Mode::Poll) return;
  if (!governor_.over_session_history(session.session->history_units())) return;
  if (!session.session->degraded()) {
    session.session->degrade();
    ++stats.sessions_degraded;
  }
  // degrade() dedups events into touched keys; if even those blow the
  // budget, collapse to ship-everything mode (zero history cost).
  if (governor_.over_session_history(session.session->history_units()) &&
      !session.session->history_collapsed()) {
    session.session->collapse_history();
    ++stats.histories_collapsed;
  }
}

void ReSyncMaster::enforce_global_history() {
  std::size_t total = history_units();
  if (!governor_.over_total_history(total)) return;
  std::vector<Session*> victims;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (auto& [id, session] : shard->sessions) {
      if (session.mode == Mode::Poll && session.session->history_units() > 0) {
        victims.push_back(&session);
      }
    }
  }
  // Largest first; ties broken by session id so the victim order (and thus
  // which sessions end up degraded) does not depend on the shard count.
  std::sort(victims.begin(), victims.end(), [](Session* a, Session* b) {
    const std::size_t ua = a->session->history_units();
    const std::size_t ub = b->session->history_units();
    if (ua != ub) return ua > ub;
    return a->id < b->id;
  });
  for (Session* victim : victims) {
    if (!governor_.over_total_history(total)) break;
    std::size_t units = victim->session->history_units();
    if (!victim->session->degraded()) {
      victim->session->degrade();
      ++governor_.stats().sessions_degraded;
      total = total - units + victim->session->history_units();
      units = victim->session->history_units();
    }
    if (governor_.over_total_history(total) &&
        !victim->session->history_collapsed()) {
      victim->session->collapse_history();
      ++governor_.stats().histories_collapsed;
      total -= units;
    }
  }
}

void ReSyncMaster::rebase_shard(Shard& shard) {
  for (auto& [id, session] : shard.sessions) {
    const std::vector<sync::ContentEvent> events =
        session.session->rebase(master_->dit());
    ++shard.delta.compaction_rebases;
    if (events.empty()) continue;
    if (!session.dirty) {
      session.dirty = true;
      shard.dirty.push_back(&session);
    }
    mirror_events(shard, session, events);
    enforce_session_history(session, shard.delta);
  }
}

void ReSyncMaster::pump() {
  const bool gap = master_->journal().trimmed_up_to() > last_pumped_seq_;
  std::vector<const server::ChangeRecord*> records;
  if (!gap) records = master_->journal().since(last_pumped_seq_);

  // Parallel phase: every shard consumes the (shared, read-only) journal
  // batch through its own router, cache and sessions — or, after a
  // compaction gap, rebases its sessions from the DIT. No state outside the
  // shard is written; governor counters accumulate in the shard delta.
  run_on_shards([&](Shard& shard) {
    if (gap) {
      // Journal compaction dropped records we never replayed: the gap cannot
      // be reconstructed from the log, so re-anchor every session on the
      // current DIT. The synthesized diff events flow through the normal
      // history/budget/router paths.
      rebase_shard(shard);
      return;
    }
    std::vector<sync::ChangeRouter::Handle> candidates;
    for (const server::ChangeRecord* record : records) {
      if (change_routing_) {
        candidates.clear();
        shard.router.route(*record, candidates, &shard.cache);
        for (const sync::ChangeRouter::Handle handle : candidates) {
          apply_change(shard, *shard.by_handle.at(handle), *record,
                       &shard.cache);
        }
      } else {
        // Exhaustive fan-out (benchmark baseline / equivalence oracle). The
        // router's holder mirror is still maintained by apply_change, so
        // routing can be switched back on afterwards.
        for (auto& [id, session] : shard.sessions) {
          apply_change(shard, session, *record, nullptr);
        }
      }
    }
  });
  if (gap) {
    last_pumped_seq_ = master_->journal().last_seq();
  } else if (!records.empty()) {
    last_pumped_seq_ = records.back()->seq;
  }

  // Barrier: fold the parallel-phase governor counters.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    governor_.stats().merge(shard->delta);
    shard->delta = GovernorStats{};
  }

  // Serial phase. Push accumulated updates on persist connections
  // immediately — only sessions some record actually touched are visited
  // (the per-shard dirty lists: O(dirty), not O(sessions)). The global push
  // order is sorted by session id, independent of the shard count.
  std::vector<Session*> dirty;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    dirty.insert(dirty.end(), shard->dirty.begin(), shard->dirty.end());
    shard->dirty.clear();
  }
  std::sort(dirty.begin(), dirty.end(),
            [](Session* a, Session* b) { return a->id < b->id; });
  for (Session* session : dirty) {
    session->dirty = false;
    if (session->mode != Mode::Persist || !session->session->initialized()) {
      continue;
    }
    const sync::UpdateBatch batch = session->session->poll();
    if (batch.empty()) continue;
    const std::vector<EntryPdu> pdus = to_pdus(batch);
    account(pdus);
    session->last_active = clock_.now();
    if (sink_) sink_(session->current_cookie, pdus);
  }
  // Poll sessions kept accumulating: re-check the global budget.
  enforce_global_history();
}

void ReSyncMaster::tick(std::uint64_t delta) {
  clock_.advance(delta);
  const std::uint64_t limit = governor_.effective_deadline(time_limit_);
  if (limit == 0) return;
  // Reconciliation walks whose round 2 never arrived (or whose replay window
  // lapsed) are dropped; the walk cookie goes stale like a session cookie.
  for (auto it = pending_reconciles_.begin();
       it != pending_reconciles_.end();) {
    if (clock_.now() - it->second.last_active > limit) {
      it = pending_reconciles_.erase(it);
    } else {
      ++it;
    }
  }
  // (v) Expire idle poll sessions past the admin time limit (or the
  // governor's tighter slow-poller deadline). Each shard's expiry queue is
  // ordered by last_active-at-insertion with lazy deletion: only the stalest
  // sessions are examined, instead of scanning all of them.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    while (!shard->expiry.empty()) {
      const auto front = shard->expiry.begin();
      if (clock_.now() - front->first <= limit) break;  // rest is fresher
      const auto it = shard->sessions.find(front->second);
      if (it == shard->sessions.end()) {
        shard->expiry.erase(front);  // dropped since insertion
        continue;
      }
      Session& session = it->second;
      if (session.mode != Mode::Poll) {
        // Persist sessions hold an open connection and are not expired here;
        // requeue at the current time so they are revisited, not rescanned.
        const std::string id = front->second;
        shard->expiry.erase(front);
        shard->expiry.emplace(clock_.now(), id);
        continue;
      }
      if (session.last_active != front->first) {
        // Touched since insertion: requeue at the true last-active time.
        const std::uint64_t last_active = session.last_active;
        const std::string id = front->second;
        shard->expiry.erase(front);
        shard->expiry.emplace(last_active, id);
        continue;
      }
      const std::uint64_t deadline = governor_.limits().poll_deadline_ticks;
      if (deadline != 0 && clock_.now() - front->first > deadline) {
        ++governor_.stats().sessions_evicted;  // governor-caused, not admin
      }
      drop_session(*shard, it);
      shard->expiry.erase(front);
    }
  }
}

void ReSyncMaster::drop_session(Shard& shard,
                                std::map<std::string, Session>::iterator it) {
  Session& session = it->second;
  if (session.route != sync::ChangeRouter::kInvalidHandle) {
    for (const auto& [key, entry] : session.session->tracker().content()) {
      shard.router.note_leave(session.route, key);
    }
    shard.router.remove_session(session.route);
    shard.by_handle.erase(session.route);
  }
  shard.sessions.erase(it);
  // Any expiry node for the session is discarded lazily by tick().
}

void ReSyncMaster::reset() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->sessions.clear();
    shard->router.clear();
    shard->by_handle.clear();
    shard->expiry.clear();
    shard->cache.clear();
    shard->dirty.clear();
    shard->delta = GovernorStats{};
  }
  pending_reconciles_.clear();
  // The restarted master resumes journal consumption at the tail: sessions
  // created after the restart take their baseline from initial() anyway.
  last_pumped_seq_ = master_->journal().last_seq();
}

void ReSyncMaster::set_legacy_eval(bool legacy) {
  legacy_eval_ = legacy;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (auto& [id, session] : shard->sessions) {
      session.session->set_legacy_eval(legacy);
    }
  }
}

void ReSyncMaster::abandon(const std::string& cookie) {
  Shard* shard = nullptr;
  const auto it = find_session(parse_cookie(cookie).id, shard);
  if (it != shard->sessions.end()) drop_session(*shard, it);
}

sync::ChangeRouter::Stats ReSyncMaster::routing_stats() const {
  sync::ChangeRouter::Stats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total.merge(shard->router.stats());
  }
  return total;
}

std::size_t ReSyncMaster::session_count() const noexcept {
  std::size_t count = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    count += shard->sessions.size();
  }
  return count;
}

std::size_t ReSyncMaster::open_connections() const {
  std::size_t count = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [cookie, session] : shard->sessions) {
      if (session.mode == Mode::Persist) ++count;
    }
  }
  return count;
}

std::size_t ReSyncMaster::history_size() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [cookie, session] : shard->sessions) {
      total += session.session->pending_events();
    }
  }
  return total;
}

std::size_t ReSyncMaster::history_units() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [cookie, session] : shard->sessions) {
      total += session.session->history_units();
    }
  }
  return total;
}

std::size_t ReSyncMaster::replay_cache_bytes() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [cookie, session] : shard->sessions) {
      total += session.replay_bytes;
    }
  }
  return total;
}

std::size_t ReSyncMaster::degraded_sessions() const {
  std::size_t count = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [cookie, session] : shard->sessions) {
      if (session.session->degraded()) ++count;
    }
  }
  return count;
}

}  // namespace fbdr::resync
