#include "resync/replica_client.h"

#include "ldap/error.h"

namespace fbdr::resync {

ReSyncReplica::ReSyncReplica(ReSyncMaster& master, ldap::Query query)
    : master_(&master), query_(std::move(query)) {}

void ReSyncReplica::apply(const ReSyncResponse& response) {
  content_.apply(from_pdus(response.pdus, response.full_reload,
                           response.complete_enumeration));
}

void ReSyncReplica::start(Mode mode) {
  mode_ = mode;
  const ReSyncResponse response = master_->handle(query_, {mode, ""});
  cookie_ = response.cookie;
  active_ = true;
  apply(response);
}

void ReSyncReplica::poll() {
  if (!active_) {
    throw ldap::ProtocolError("poll() before start()");
  }
  try {
    const ReSyncResponse response = master_->handle(query_, {Mode::Poll, cookie_});
    apply(response);
  } catch (const ldap::ProtocolError&) {
    if (!auto_recover_) throw;
    // Session lost at the master: start over. The initial response is a
    // full reload, so convergence is preserved at the cost of the content
    // retransmission — the trade-off the cookie mechanism exists to avoid.
    ++recoveries_;
    start(Mode::Poll);
  }
}

void ReSyncReplica::sync_end() {
  if (!active_) return;
  master_->handle(query_, {Mode::SyncEnd, cookie_});
  active_ = false;
}

void ReSyncReplica::abandon() {
  if (!active_) return;
  master_->abandon(cookie_);
  active_ = false;
}

void ReSyncReplica::deliver(const std::vector<EntryPdu>& pdus) {
  content_.apply(from_pdus(pdus, /*full_reload=*/false,
                           /*complete_enumeration=*/false));
}

void NotificationRouter::attach(ReSyncMaster& master) {
  master.set_notification_sink(
      [this](const std::string& cookie, const std::vector<EntryPdu>& pdus) {
        const auto it = by_cookie_.find(cookie);
        if (it != by_cookie_.end()) it->second->deliver(pdus);
      });
}

void NotificationRouter::subscribe(ReSyncReplica& replica) {
  by_cookie_[replica.cookie()] = &replica;
}

void NotificationRouter::unsubscribe(const std::string& cookie) {
  by_cookie_.erase(cookie);
}

}  // namespace fbdr::resync
