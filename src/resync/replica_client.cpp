#include "resync/replica_client.h"

#include <algorithm>

#include "ldap/error.h"

namespace fbdr::resync {

ReSyncReplica::ReSyncReplica(ReSyncMaster& master, ldap::Query query)
    : owned_channel_(std::make_unique<net::DirectChannel>(master)),
      channel_(owned_channel_.get()),
      query_(std::move(query)) {}

ReSyncReplica::ReSyncReplica(net::Channel& channel, ldap::Query query)
    : channel_(&channel), query_(std::move(query)) {}

ReSyncResponse ReSyncReplica::request(const ReSyncControl& control) {
  return net::exchange_with_retry(*channel_, query_, control, retry_, &retries_);
}

void ReSyncReplica::apply(const ReSyncResponse& response) {
  if (response.complete_enumeration && !response.continued) ++degraded_polls_;
  content_.apply(to_batch(response));
}

std::size_t ReSyncReplica::drain_pages(const ReSyncResponse& first, Mode mode) {
  // Each page is applied as it arrives and advances the cookie, so the
  // client never holds more than one page and a mid-drain transport failure
  // resumes at the next unfetched page (the last page replays from the
  // master's cache if the loss hit the response).
  bool more = first.more;
  std::size_t applied = 0;
  while (more) {
    const ReSyncResponse page = request({mode, cookie_});
    cookie_ = page.cookie;
    ++pages_fetched_;
    applied += page.pdus.size();
    content_.apply(to_batch(page));
    more = page.more;
  }
  return applied;
}

ReSyncResponse ReSyncReplica::initial_exchange(
    Mode mode, const std::shared_ptr<const ReconcileRequest>& reconcile) {
  ReSyncControl control{mode, ""};
  control.reconcile = reconcile;
  ReSyncResponse response = request(control);
  // Admission control: a governed master at its session cap answers busy
  // without creating a session. Retry the initial request under the same
  // backoff schedule as transport retries.
  std::size_t attempt = 0;
  while (response.busy) {
    if (attempt + 1 >= std::max<std::size_t>(retry_.max_attempts, 1)) {
      throw ldap::BusyError("master at session capacity; " +
                            std::to_string(attempt + 1) +
                            " initial request(s) rejected busy");
    }
    channel_->elapse(retry_.backoff(attempt));
    ++attempt;
    ++busy_rejections_;
    response = request(control);
  }
  return response;
}

void ReSyncReplica::start(Mode mode) {
  mode_ = mode;
  const ReSyncResponse response = initial_exchange(mode, nullptr);
  cookie_ = response.cookie;
  active_ = true;
  apply(response);
  drain_pages(response, mode);
}

void ReSyncReplica::adopt_reload(const ReSyncResponse& response) {
  cookie_ = response.cookie;
  active_ = true;
  apply(response);
  drain_pages(response, Mode::Poll);
}

void ReSyncReplica::recover() {
  ++recoveries_;
  if (!reconcile_ || content_.size() == 0) {
    // Reconciliation disabled, or nothing local to reconcile against: the
    // full reload IS the diff.
    ++full_reloads_;
    start(Mode::Poll);
    return;
  }
  // Round 1: offer the local content's digests instead of accepting a full
  // reload (DESIGN.md §12).
  auto offer = std::make_shared<ReconcileRequest>();
  offer->round = 1;
  offer->root_digest = content_.digest().root();
  offer->entry_count = content_.digest().entry_count();
  offer->buckets = content_.digest().bucket_digests();
  reconcile_overhead_bytes_ += offer->approx_bytes();
  const ReSyncResponse response = initial_exchange(Mode::Poll, offer);
  if (!response.reconcile) {
    // The peer does not speak reconciliation: the offer was ignored and a
    // plain initial full reload came back (version gating).
    ++full_reloads_;
    adopt_reload(response);
    return;
  }
  if (response.reconcile->fallback) {
    // Diverged too far (or walk cap): the master shipped the content.
    ++full_reloads_;
    ++reconcile_fallbacks_;
    adopt_reload(response);
    return;
  }
  if (response.reconcile->in_sync) {
    // Roots matched: nothing shipped at all; resume polling.
    ++reconciles_;
    cookie_ = response.cookie;
    active_ = true;
    return;
  }
  // Round 2: upload fingerprints for the divergent buckets; the answer is
  // the exact diff (plus continuation pages when the master paginates).
  auto upload = std::make_shared<ReconcileRequest>();
  upload->round = 2;
  upload->fingerprints =
      content_.fingerprints_for(response.reconcile->need_buckets);
  reconcile_overhead_bytes_ += upload->approx_bytes();
  try {
    ReSyncControl control{Mode::Poll, response.cookie};
    control.reconcile = upload;
    const ReSyncResponse diff = request(control);
    cookie_ = diff.cookie;
    active_ = true;
    std::size_t shipped = diff.pdus.size();
    apply(diff);
    shipped += drain_pages(diff, Mode::Poll);
    reconcile_entries_shipped_ += shipped;
    ++reconciles_;
  } catch (const ldap::StaleCookieError&) {
    // The walk expired between rounds: the plain reload path always works.
    ++full_reloads_;
    start(Mode::Poll);
  }
}

void ReSyncReplica::poll() {
  if (!active_) {
    throw ldap::ProtocolError("poll() before start()");
  }
  try {
    const ReSyncResponse response = request({Mode::Poll, cookie_});
    cookie_ = response.cookie;
    apply(response);
    drain_pages(response, Mode::Poll);
  } catch (const ldap::StaleCookieError&) {
    // Session lost at the master (expiry or restart): recover. With
    // reconciliation, only the divergent entries ship; without it, the
    // initial response is a full reload — convergence either way. Any other
    // protocol error is a client or protocol bug and propagates.
    if (!auto_recover_) throw;
    recover();
  }
}

void ReSyncReplica::sync_end() {
  if (!active_) return;
  request({Mode::SyncEnd, cookie_});
  active_ = false;
}

void ReSyncReplica::abandon() {
  if (!active_) return;
  channel_->abandon(cookie_);
  active_ = false;
}

void ReSyncReplica::deliver(const std::vector<EntryPdu>& pdus) {
  content_.apply(from_pdus(pdus, /*full_reload=*/false,
                           /*complete_enumeration=*/false));
}

void NotificationRouter::attach(ReSyncMaster& master) {
  master.set_notification_sink(
      [this](const std::string& cookie, const std::vector<EntryPdu>& pdus) {
        const auto it = by_cookie_.find(cookie);
        if (it != by_cookie_.end()) it->second->deliver(pdus);
      });
}

void NotificationRouter::subscribe(ReSyncReplica& replica) {
  by_cookie_[replica.cookie()] = &replica;
}

void NotificationRouter::unsubscribe(const std::string& cookie) {
  by_cookie_.erase(cookie);
}

}  // namespace fbdr::resync
