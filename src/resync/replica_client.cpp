#include "resync/replica_client.h"

#include <algorithm>

#include "ldap/error.h"

namespace fbdr::resync {

ReSyncReplica::ReSyncReplica(ReSyncMaster& master, ldap::Query query)
    : owned_channel_(std::make_unique<net::DirectChannel>(master)),
      channel_(owned_channel_.get()),
      query_(std::move(query)) {}

ReSyncReplica::ReSyncReplica(net::Channel& channel, ldap::Query query)
    : channel_(&channel), query_(std::move(query)) {}

ReSyncResponse ReSyncReplica::request(const ReSyncControl& control) {
  return net::exchange_with_retry(*channel_, query_, control, retry_, &retries_);
}

void ReSyncReplica::apply(const ReSyncResponse& response) {
  if (response.complete_enumeration && !response.continued) ++degraded_polls_;
  content_.apply(to_batch(response));
}

void ReSyncReplica::drain_pages(const ReSyncResponse& first, Mode mode) {
  // Each page is applied as it arrives and advances the cookie, so the
  // client never holds more than one page and a mid-drain transport failure
  // resumes at the next unfetched page (the last page replays from the
  // master's cache if the loss hit the response).
  bool more = first.more;
  while (more) {
    const ReSyncResponse page = request({mode, cookie_});
    cookie_ = page.cookie;
    ++pages_fetched_;
    content_.apply(to_batch(page));
    more = page.more;
  }
}

void ReSyncReplica::start(Mode mode) {
  mode_ = mode;
  ReSyncResponse response = request({mode, ""});
  // Admission control: a governed master at its session cap answers busy
  // without creating a session. Retry the initial request under the same
  // backoff schedule as transport retries.
  std::size_t attempt = 0;
  while (response.busy) {
    if (attempt + 1 >= std::max<std::size_t>(retry_.max_attempts, 1)) {
      throw ldap::BusyError("master at session capacity; " +
                            std::to_string(attempt + 1) +
                            " initial request(s) rejected busy");
    }
    channel_->elapse(retry_.backoff(attempt));
    ++attempt;
    ++busy_rejections_;
    response = request({mode, ""});
  }
  cookie_ = response.cookie;
  active_ = true;
  apply(response);
  drain_pages(response, mode);
}

void ReSyncReplica::poll() {
  if (!active_) {
    throw ldap::ProtocolError("poll() before start()");
  }
  try {
    const ReSyncResponse response = request({Mode::Poll, cookie_});
    cookie_ = response.cookie;
    apply(response);
    drain_pages(response, Mode::Poll);
  } catch (const ldap::StaleCookieError&) {
    // Session lost at the master (expiry or restart): start over. The
    // initial response is a full reload, so convergence is preserved at the
    // cost of the content retransmission — the trade-off the cookie
    // mechanism exists to avoid. Any other protocol error is a client or
    // protocol bug and propagates.
    if (!auto_recover_) throw;
    ++recoveries_;
    start(Mode::Poll);
  }
}

void ReSyncReplica::sync_end() {
  if (!active_) return;
  request({Mode::SyncEnd, cookie_});
  active_ = false;
}

void ReSyncReplica::abandon() {
  if (!active_) return;
  channel_->abandon(cookie_);
  active_ = false;
}

void ReSyncReplica::deliver(const std::vector<EntryPdu>& pdus) {
  content_.apply(from_pdus(pdus, /*full_reload=*/false,
                           /*complete_enumeration=*/false));
}

void NotificationRouter::attach(ReSyncMaster& master) {
  master.set_notification_sink(
      [this](const std::string& cookie, const std::vector<EntryPdu>& pdus) {
        const auto it = by_cookie_.find(cookie);
        if (it != by_cookie_.end()) it->second->deliver(pdus);
      });
}

void NotificationRouter::subscribe(ReSyncReplica& replica) {
  by_cookie_[replica.cookie()] = &replica;
}

void NotificationRouter::unsubscribe(const std::string& cookie) {
  by_cookie_.erase(cookie);
}

}  // namespace fbdr::resync
