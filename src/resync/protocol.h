#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "ldap/entry.h"
#include "ldap/query.h"
#include "sync/content_digest.h"
#include "sync/update_batch.h"

namespace fbdr::resync {

/// Update mode requested by the replica (§5.2): "the client can specify the
/// mode of update as polling or notifications".
enum class Mode {
  Poll,     // pull accumulated updates, receive a resumption cookie
  Persist,  // keep the connection open; further changes are pushed
  SyncEnd,  // terminate the session
};

std::string to_string(Mode mode);

/// One digest PDU of a reconciliation walk: a bucket's additive fingerprint
/// plus the entry count it covers (DESIGN.md §12).
using DigestPdu = sync::BucketDigest;

/// Reconciliation offer attached to a request instead of accepting a full
/// reload. Round 1 carries the replica's root digest and per-bucket digests;
/// round 2 carries per-entry fingerprints for the buckets the master flagged
/// as divergent. Version-gated: a master that does not speak reconciliation
/// ignores the field and answers a plain initial full reload.
struct ReconcileRequest {
  int round = 1;
  std::uint64_t root_digest = 0;
  std::uint64_t entry_count = 0;
  std::vector<DigestPdu> buckets;                     // round 1
  std::vector<sync::EntryFingerprint> fingerprints;   // round 2

  std::size_t approx_bytes() const;
};

/// Master's answer to a reconciliation round.
struct ReconcileResponse {
  /// Root digests matched: the replica already holds the exact content;
  /// no entries ship at all.
  bool in_sync = false;
  /// Divergence too large (or reconciliation not admitted): the response
  /// carries a plain full reload instead of a diff.
  bool fallback = false;
  /// Round-1 answer: bucket indices whose digests diverged; the replica
  /// must send fingerprints for exactly these in round 2.
  std::vector<std::uint32_t> need_buckets;

  std::size_t approx_bytes() const;
};

/// The resync control attached to a search request:
///   reSyncControl = (mode, cookie).
/// An empty cookie marks the initial request of an update session.
struct ReSyncControl {
  Mode mode = Mode::Poll;
  std::string cookie;
  /// Non-null on an initial request offering digests instead of accepting a
  /// full reload, and on the round-2 fingerprint upload.
  std::shared_ptr<const ReconcileRequest> reconcile;

  ReSyncControl() = default;
  ReSyncControl(Mode m, std::string c) : mode(m), cookie(std::move(c)) {}

  bool initial() const noexcept { return cookie.empty(); }
  std::string to_string() const;
};

/// Action carried by a notification/update PDU: "if the action is add or
/// modify, the complete entry is sent, otherwise if the action is delete,
/// only the DN of the entry is sent". Retain conveys the unchanged entries
/// of equation (3) when history information is incomplete.
enum class Action { Add, Modify, Delete, Retain };

std::string to_string(Action action);

/// One update PDU: an entry (or bare DN) plus the action control.
struct EntryPdu {
  Action action = Action::Add;
  ldap::Dn dn;
  ldap::EntryPtr entry;  // null for Delete/Retain

  std::size_t approx_bytes(std::size_t entry_padding = 0) const;
  std::string to_string() const;
};

/// Response to one resync request.
struct ReSyncResponse {
  std::vector<EntryPdu> pdus;
  std::string cookie;        // resumption cookie (poll mode)
  bool persistent = false;   // connection remains open (persist mode)
  bool full_reload = false;  // initial content: replica starts empty
  /// Equation (3) responses enumerate the whole content; unmentioned entries
  /// must be discarded by the replica.
  bool complete_enumeration = false;
  /// Admission control: the server is at its session cap and created no
  /// session. The cookie is unchanged; the client retries with backoff.
  bool busy = false;
  /// Paged responses: `more` means further pages of the SAME logical batch
  /// follow (the replica must not act on completeness semantics — full_reload
  /// clearing is done on the first page, complete-enumeration drops only
  /// after the last); `continued` marks pages 2..n of a paged batch.
  bool more = false;
  bool continued = false;
  /// Non-empty when the server did not admit the session: the query is not
  /// contained in the endpoint's replicated set, and the client should
  /// re-target the session at this URL (the relay's parent, mirroring the
  /// default-referral bounce of §2.3). No session was created.
  std::string referral_url;
  /// Logical time at the tree root that the shipped content reflects, as far
  /// as the answering endpoint knows: the root master stamps its own clock;
  /// a relay forwards the root time learned on its last upstream sync. The
  /// difference against the root clock is the per-hop staleness lag.
  std::uint64_t origin_time = 0;
  /// Non-null when the server answered a reconciliation round. Its absence on
  /// a response to a reconcile-offering request means the peer does not speak
  /// reconciliation (old master): the response body is a plain full reload.
  std::shared_ptr<const ReconcileResponse> reconcile;

  bool referred() const noexcept { return !referral_url.empty(); }

  std::size_t entries_sent() const;
  std::size_t dns_sent() const;
};

/// Converts a sync::UpdateBatch into the wire PDUs.
std::vector<EntryPdu> to_pdus(const sync::UpdateBatch& batch);

/// Applies wire PDUs back into an UpdateBatch shape (replica side). The
/// paging flags default to an unpaged (single, final page) batch.
sync::UpdateBatch from_pdus(const std::vector<EntryPdu>& pdus, bool full_reload,
                            bool complete_enumeration, bool more = false,
                            bool continued = false);

/// Replica-side view of one response as an applyable batch, paging flags
/// included.
sync::UpdateBatch to_batch(const ReSyncResponse& response);

}  // namespace fbdr::resync
