#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/channel.h"
#include "resync/master.h"
#include "sync/replica_content.h"

namespace fbdr::resync {

/// Replica-side ReSync client for one replicated query: runs the update
/// session against a master through a net::Channel, applies the received
/// PDUs to a local content store, and exposes the store for serving queries.
///
/// Transport faults (net::TransportError) are retried under the configured
/// RetryPolicy; the master's replay-safe cookies make those retries
/// idempotent. A stale cookie (session expired, master restarted) triggers
/// the full-reload recovery when auto-recover is enabled.
class ReSyncReplica {
 public:
  /// Direct in-process link to the master (owns a DirectChannel).
  ReSyncReplica(ReSyncMaster& master, ldap::Query query);

  /// Session over an explicit (possibly faulty) channel.
  ReSyncReplica(net::Channel& channel, ldap::Query query);

  /// Retry discipline for transport failures. Default: no retries. The same
  /// attempt/backoff schedule paces retries of busy-rejected initial
  /// requests (admission control at a governed master).
  void set_retry_policy(net::RetryPolicy policy) { retry_ = policy; }

  /// Sends the initial request (null cookie) in the given mode. A busy
  /// rejection (master at its session cap) is retried with backoff under the
  /// retry policy; ldap::BusyError propagates once attempts run out.
  void start(Mode mode = Mode::Poll);

  /// Poll-mode pull of accumulated updates. Throws ldap::StaleCookieError
  /// when the session is unknown/expired at the master (unless recovery is
  /// enabled) and net::TransportError when the link fails past the retry
  /// budget; other protocol errors always propagate.
  ///
  /// A paged response (`more`) is followed up immediately: each page is
  /// applied and advances the cookie, so a transport failure mid-drain
  /// resumes at the next unfetched page after the retry.
  void poll();

  /// When enabled, a poll whose cookie the master no longer recognizes
  /// (session timed out, master restarted) transparently re-starts the
  /// session and polling resumes under the fresh cookie. With reconciliation
  /// on (the default) the restart first offers the local content's digests
  /// so only the divergent entries ship; otherwise (or when the master does
  /// not speak reconciliation, or the walk falls back) the master replies
  /// with the full content and the replica reloads. Only stale-cookie errors
  /// recover; every other protocol error propagates.
  void set_auto_recover(bool enabled) { auto_recover_ = enabled; }

  /// Disables the digest offer on recovery: every recovery is a full reload,
  /// as before reconciliation existed (DESIGN.md §12).
  void set_reconcile(bool enabled) { reconcile_ = enabled; }

  /// Number of recoveries performed. Always equals
  /// full_reloads() + reconciles().
  std::uint64_t recoveries() const noexcept { return recoveries_; }

  /// Recoveries (or starts after a recovery fallback) that reloaded the
  /// entire content.
  std::uint64_t full_reloads() const noexcept { return full_reloads_; }

  /// Recoveries healed by a reconciliation walk (in-sync or diff).
  std::uint64_t reconciles() const noexcept { return reconciles_; }

  /// Walks the master refused (divergence/cap) — a subset of full_reloads().
  std::uint64_t reconcile_fallbacks() const noexcept {
    return reconcile_fallbacks_;
  }

  /// Diff PDUs received by completed walks — the O(diff) shipping the
  /// chaos suites assert on.
  std::uint64_t reconcile_entries_shipped() const noexcept {
    return reconcile_entries_shipped_;
  }

  /// Approximate bytes of digests/fingerprints the client uploaded for
  /// walks — the reconciliation overhead side of the savings ledger.
  std::uint64_t reconcile_overhead_bytes() const noexcept {
    return reconcile_overhead_bytes_;
  }

  /// Transport retries spent across all exchanges.
  std::uint64_t retries() const noexcept { return retries_; }

  /// Busy rejections absorbed by start() before a session was admitted.
  std::uint64_t busy_rejections() const noexcept { return busy_rejections_; }

  /// Continuation pages fetched beyond the first response of a poll/start.
  std::uint64_t pages_fetched() const noexcept { return pages_fetched_; }

  /// Responses that carried a complete enumeration — the master answered
  /// from a degraded (equation (3)) session or healed a stripped replay.
  std::uint64_t degraded_polls() const noexcept { return degraded_polls_; }

  /// Ends the session (mode sync_end).
  void sync_end();

  /// Abandons a persistent search (the other way a session ends).
  void abandon();

  /// Delivers pushed notifications (persist mode); normally invoked via a
  /// NotificationRouter installed as the master's sink.
  void deliver(const std::vector<EntryPdu>& pdus);

  const sync::ReplicaContent& content() const noexcept { return content_; }
  const std::string& cookie() const noexcept { return cookie_; }
  bool active() const noexcept { return active_; }

 private:
  ReSyncResponse request(const ReSyncControl& control);
  void apply(const ReSyncResponse& response);
  /// Fetches and applies continuation pages until the final one. Returns the
  /// number of PDUs applied from the continuation pages.
  std::size_t drain_pages(const ReSyncResponse& first, Mode mode);
  /// Initial request (busy-retried); `reconcile` rides along when non-null.
  ReSyncResponse initial_exchange(
      Mode mode, const std::shared_ptr<const ReconcileRequest>& reconcile);
  /// Stale-cookie recovery: digest walk when possible, full reload otherwise.
  void recover();
  /// Adopts a full-reload recovery response (cookie, content, pages).
  void adopt_reload(const ReSyncResponse& response);

  std::unique_ptr<net::Channel> owned_channel_;
  net::Channel* channel_;
  ldap::Query query_;
  sync::ReplicaContent content_;
  net::RetryPolicy retry_;
  std::string cookie_;
  Mode mode_ = Mode::Poll;
  bool active_ = false;
  bool auto_recover_ = false;
  bool reconcile_ = true;
  std::uint64_t recoveries_ = 0;
  std::uint64_t full_reloads_ = 0;
  std::uint64_t reconciles_ = 0;
  std::uint64_t reconcile_fallbacks_ = 0;
  std::uint64_t reconcile_entries_shipped_ = 0;
  std::uint64_t reconcile_overhead_bytes_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t pages_fetched_ = 0;
  std::uint64_t degraded_polls_ = 0;
};

/// Routes persist-mode notifications from one master to the replicas that
/// own the corresponding sessions. Install via master.set_notification_sink.
class NotificationRouter {
 public:
  void attach(ReSyncMaster& master);
  void subscribe(ReSyncReplica& replica);
  void unsubscribe(const std::string& cookie);

 private:
  std::map<std::string, ReSyncReplica*> by_cookie_;
};

}  // namespace fbdr::resync
