#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/stats.h"
#include "replica/filter_replica.h"
#include "replica/subtree_replica.h"
#include "resync/master.h"
#include "select/evolution.h"
#include "select/selector.h"
#include "server/directory_server.h"

namespace fbdr::core {

/// Outcome of serving one client request at a replica site.
struct ServeOutcome {
  bool hit = false;
  bool from_cache = false;  // answered by a cached user query
  /// The hit was served from a degraded filter's local content, which may
  /// be stale (its update session is down past the retry budget).
  bool stale = false;
};

/// A size estimator backed by the master directory, memoized by query key.
select::FilterSelector::SizeEstimator master_size_estimator(
    std::shared_ptr<server::DirectoryServer> master);

/// The deployed filter-based replication site (§3, §6, §7): a FilterReplica
/// answering client queries locally, kept consistent with the master through
/// ReSync sessions (one per replicated filter), optionally caching recent
/// user queries and optionally adapting the replicated filter set with the
/// periodic selection algorithm of §6.2.
///
/// Drive it with serve() per client query and sync() at the replica's update
/// cadence; all synchronization and fetch traffic is accounted in traffic().
class FilterReplicationService {
 public:
  struct Config {
    /// Window of cached user queries (0 disables query caching).
    std::size_t query_cache_window = 0;
    /// Dynamic filter selection; nullopt = statically configured filters.
    std::optional<select::FilterSelector::Config> selection;
    /// Entry padding for byte-level traffic accounting (the case-study
    /// entries are ~6 KB, §7.1).
    std::size_t entry_padding = 0;
    /// Retry discipline for ReSync exchanges that fail at the transport
    /// level. Default: a single attempt (faults surface immediately).
    net::RetryPolicy retry;
    /// Recovery offers digests of the local content first so only divergent
    /// entries ship; false restores the old always-full-reload recovery
    /// (DESIGN.md §12).
    bool reconcile = true;
  };

  FilterReplicationService(
      std::shared_ptr<server::DirectoryServer> master, Config config,
      std::shared_ptr<ldap::TemplateRegistry> registry = nullptr,
      std::optional<select::Generalizer> generalizer = std::nullopt);

  /// Per-filter consistency level (§3.2: "a filter based replica allows the
  /// flexibility of specifying different consistency levels for different
  /// types of objects"). The filter's ReSync session is polled on every
  /// `interval`-th sync() — 1 is the tightest level; rarely-changing object
  /// classes (locations, departments) can use larger intervals.
  struct SyncPolicy {
    std::uint64_t interval = 1;
  };

  /// Statically installs one replicated filter (fetches its content; the
  /// fetch is accounted as update traffic).
  void install(const ldap::Query& query);
  void install(const ldap::Query& query, SyncPolicy policy);

  /// Removes a replicated filter.
  void uninstall(const ldap::Query& query);

  /// Serves one client query: a containment hit answers locally (even from
  /// a degraded filter's possibly-stale content); a miss is forwarded to the
  /// master (and optionally cached as a user query). The selector observes
  /// every query and may trigger a revolution, whose fetches are accounted
  /// as update traffic.
  ServeOutcome serve(const ldap::Query& query);

  /// Polls every ReSync session due this round and applies the deltas to
  /// the replica. A session whose transport fails past the retry budget
  /// marks its filter degraded: the filter keeps answering from local
  /// content and heals with a full-reload recovery once the link returns.
  void sync();

  /// Replaces the transport between this site and the master (e.g. with a
  /// net::FaultyChannel wrapping resync() for chaos testing).
  void set_channel(std::shared_ptr<net::Channel> channel);

  replica::FilterReplica& filter_replica() noexcept { return replica_; }
  const replica::FilterReplica& filter_replica() const noexcept { return replica_; }
  resync::ReSyncMaster& resync() noexcept { return resync_; }

  /// Master->replica update traffic: ReSync deltas plus revolution fetches.
  const net::TrafficStats& traffic() const noexcept { return resync_.traffic(); }

  /// Per-filter session health: degradation state, staleness in master
  /// clock ticks, retry/recovery counts.
  net::HealthStats health() const;

  std::size_t installed_filters() const { return sessions_.size(); }
  std::uint64_t revolutions() const;

 private:
  struct InstalledFilter {
    ldap::Query query;
    std::size_t replica_id = 0;
    std::string cookie;
    SyncPolicy policy;
    bool degraded = false;
    std::uint64_t last_synced_tick = 0;
    std::uint64_t retries = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t failed_syncs = 0;
    std::uint64_t busy_rejections = 0;  // refetches bounced at capacity
    std::uint64_t degraded_polls = 0;   // eq.(3) enumerations received
    std::uint64_t paged_polls = 0;      // continuation pages fetched
    std::uint64_t full_reloads = 0;     // recoveries that reshipped everything
    std::uint64_t reconciles = 0;       // recoveries healed by a digest walk
    std::uint64_t reconcile_entries_shipped = 0;  // diff PDUs those walks cost
  };

  void apply_revolution(const select::FilterSelector::Revolution& revolution);
  InstalledFilter* find_installed(const std::string& key);
  resync::ReSyncResponse request(InstalledFilter& installed,
                                 const resync::ReSyncControl& control);
  /// Applies the (page-combined) PDUs of one poll. A complete enumeration
  /// (equation (3), from a degraded session) drops unmentioned entries.
  void apply_delta(InstalledFilter& installed,
                   const std::vector<resync::EntryPdu>& pdus,
                   bool complete_enumeration);
  /// Fetches the remaining pages of a paged response, appending their PDUs.
  /// The final flags are merged into the returned response.
  resync::ReSyncResponse collect_pages(InstalledFilter& installed,
                                       resync::ReSyncResponse first);
  /// Opens a fresh session to recover the filter. With Config::reconcile on
  /// and local content present, a digest walk is offered first so only the
  /// divergent entries ship; otherwise (or on walk fallback / an old master)
  /// the full content reloads. Returns false (leaving the filter as it was)
  /// when the transport stays down or the master is at capacity (busy).
  bool refetch(InstalledFilter& installed);
  /// Adopts a full-content initial response (collects pages, replaces the
  /// filter's content).
  bool adopt_full(InstalledFilter& installed, resync::ReSyncResponse response);

  std::shared_ptr<server::DirectoryServer> master_;
  Config config_;
  replica::FilterReplica replica_;
  resync::ReSyncMaster resync_;
  std::shared_ptr<net::Channel> channel_;
  std::vector<InstalledFilter> sessions_;
  std::optional<select::FilterSelector> selector_;
  std::uint64_t sync_round_ = 0;
};

/// The subtree-based counterpart used as the comparison baseline: a
/// SubtreeReplica over configured replication contexts; every master change
/// inside a context is shipped to the replica on sync().
class SubtreeReplicationService {
 public:
  explicit SubtreeReplicationService(
      std::shared_ptr<server::DirectoryServer> master,
      std::size_t entry_padding = 0);

  void add_context(containment::ReplicationContext context);

  /// Loads the configured contexts from the master (initial fill is not
  /// counted as update traffic, mirroring the filter service).
  void load();

  ServeOutcome serve(const ldap::Query& query);

  /// Ships every journaled change inside the contexts since the last sync.
  void sync();

  replica::SubtreeReplica& subtree_replica() noexcept { return replica_; }
  const net::TrafficStats& traffic() const noexcept { return traffic_; }

 private:
  std::shared_ptr<server::DirectoryServer> master_;
  replica::SubtreeReplica replica_;
  net::TrafficStats traffic_;
  std::uint64_t last_seq_ = 0;
  std::size_t entry_padding_ = 0;
};

}  // namespace fbdr::core
