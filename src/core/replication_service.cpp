#include "core/replication_service.h"

#include <map>

#include "sync/content_tracker.h"

namespace fbdr::core {

using ldap::EntryPtr;
using ldap::Query;

select::FilterSelector::SizeEstimator master_size_estimator(
    std::shared_ptr<server::DirectoryServer> master) {
  auto cache = std::make_shared<std::map<std::string, std::size_t>>();
  return [master = std::move(master), cache](const Query& query) -> std::size_t {
    const std::string key = query.key();
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    const std::size_t count = master->evaluate(query).size();
    (*cache)[key] = count;
    return count;
  };
}

FilterReplicationService::FilterReplicationService(
    std::shared_ptr<server::DirectoryServer> master, Config config,
    std::shared_ptr<ldap::TemplateRegistry> registry,
    std::optional<select::Generalizer> generalizer)
    : master_(std::move(master)),
      config_(config),
      replica_(master_->schema(), std::move(registry)),
      resync_(*master_) {
  replica_.set_query_cache_window(config_.query_cache_window);
  if (config_.selection) {
    selector_.emplace(*config_.selection,
                      generalizer ? std::move(*generalizer)
                                  : select::Generalizer(master_->schema()),
                      master_size_estimator(master_));
  }
}

FilterReplicationService::InstalledFilter* FilterReplicationService::find_installed(
    const std::string& key) {
  for (InstalledFilter& installed : sessions_) {
    if (installed.query.key() == key) return &installed;
  }
  return nullptr;
}

void FilterReplicationService::install(const Query& query) {
  install(query, SyncPolicy{});
}

void FilterReplicationService::install(const Query& query, SyncPolicy policy) {
  if (find_installed(query.key())) return;
  InstalledFilter installed;
  installed.query = query;
  installed.policy = policy;
  if (installed.policy.interval == 0) installed.policy.interval = 1;
  installed.replica_id = replica_.add_query(query);
  // Open a ReSync session; the initial response carries the whole content
  // and is accounted as fetch/update traffic by the master.
  const resync::ReSyncResponse response =
      resync_.handle(query, {resync::Mode::Poll, ""});
  installed.cookie = response.cookie;
  std::vector<EntryPtr> entries;
  entries.reserve(response.pdus.size());
  for (const resync::EntryPdu& pdu : response.pdus) {
    if (pdu.entry) entries.push_back(pdu.entry);
  }
  replica_.set_content(installed.replica_id, entries);
  sessions_.push_back(std::move(installed));
}

void FilterReplicationService::uninstall(const Query& query) {
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->query.key() == query.key()) {
      resync_.handle(it->query, {resync::Mode::SyncEnd, it->cookie});
      replica_.remove_query(it->replica_id);
      sessions_.erase(it);
      return;
    }
  }
}

void FilterReplicationService::apply_revolution(
    const select::FilterSelector::Revolution& revolution) {
  for (const Query& query : revolution.dropped) {
    uninstall(query);
  }
  for (const Query& query : revolution.fetched) {
    install(query);
  }
}

ServeOutcome FilterReplicationService::serve(const Query& query) {
  ServeOutcome outcome;
  const replica::Decision decision = replica_.handle(query);
  outcome.hit = decision.hit;
  outcome.from_cache =
      decision.hit && decision.answered_by.rfind("cache:", 0) == 0;

  if (!decision.hit) {
    // Miss: the master answers; optionally cache the user query with its
    // result for the temporal-locality window.
    if (config_.query_cache_window > 0) {
      replica_.cache_user_query(query, master_->evaluate(query));
    }
  }
  if (selector_) {
    if (const auto revolution = selector_->observe(query)) {
      apply_revolution(*revolution);
    }
  }
  return outcome;
}

void FilterReplicationService::sync() {
  resync_.pump();
  ++sync_round_;
  for (InstalledFilter& installed : sessions_) {
    // Consistency levels (§3.2): lower-priority filters poll every Nth sync.
    if (sync_round_ % installed.policy.interval != 0) continue;
    const resync::ReSyncResponse response =
        resync_.handle(installed.query, {resync::Mode::Poll, installed.cookie});
    if (response.pdus.empty()) continue;
    // Rebuild this query's content from the delta: adds/mods upsert, deletes
    // drop. set_content needs the full list, so fold into a map first.
    std::map<std::string, EntryPtr> content;
    for (const EntryPtr& entry : replica_.query_content(installed.replica_id)) {
      content[entry->dn().norm_key()] = entry;
    }
    for (const resync::EntryPdu& pdu : response.pdus) {
      switch (pdu.action) {
        case resync::Action::Add:
        case resync::Action::Modify:
          content[pdu.dn.norm_key()] = pdu.entry;
          break;
        case resync::Action::Delete:
          content.erase(pdu.dn.norm_key());
          break;
        case resync::Action::Retain:
          break;
      }
    }
    std::vector<EntryPtr> entries;
    entries.reserve(content.size());
    for (auto& [key, entry] : content) entries.push_back(std::move(entry));
    replica_.set_content(installed.replica_id, entries);
  }
}

std::uint64_t FilterReplicationService::revolutions() const {
  return selector_ ? selector_->revolutions() : 0;
}

SubtreeReplicationService::SubtreeReplicationService(
    std::shared_ptr<server::DirectoryServer> master, std::size_t entry_padding)
    : master_(std::move(master)),
      last_seq_(master_->journal().last_seq()),
      entry_padding_(entry_padding) {}

void SubtreeReplicationService::add_context(
    containment::ReplicationContext context) {
  replica_.add_context(std::move(context));
}

void SubtreeReplicationService::load() {
  replica_.load_content(*master_);
  last_seq_ = master_->journal().last_seq();
}

ServeOutcome SubtreeReplicationService::serve(const Query& query) {
  ServeOutcome outcome;
  outcome.hit = replica_.handle(query).hit;
  return outcome;
}

void SubtreeReplicationService::sync() {
  for (const server::ChangeRecord* record : master_->journal().since(last_seq_)) {
    last_seq_ = record->seq;
    // Every change inside a replicated subtree must be shipped: full entry
    // for add/modify, DN for delete; a rename ships delete + add.
    switch (record->type) {
      case server::ChangeType::Add:
      case server::ChangeType::Modify:
        if (replica_.covers(record->dn) && record->after) {
          traffic_.count_entry(record->after->approx_size_bytes(entry_padding_));
        }
        break;
      case server::ChangeType::Delete:
        if (replica_.covers(record->dn)) {
          traffic_.count_dn(record->dn.to_string().size());
        }
        break;
      case server::ChangeType::ModifyDn:
        if (replica_.covers(record->dn)) {
          traffic_.count_dn(record->dn.to_string().size());
        }
        if (replica_.covers(record->new_dn) && record->after) {
          traffic_.count_entry(record->after->approx_size_bytes(entry_padding_));
        }
        break;
    }
  }
  traffic_.count_round_trip();
  // The shipped changes themselves keep the replica's copy current; the
  // answerability decision depends only on the configured contexts, so no
  // full rescan is needed here.
}

}  // namespace fbdr::core
