#include "core/replication_service.h"

#include <map>
#include <set>

#include "ldap/error.h"
#include "sync/content_digest.h"
#include "sync/content_tracker.h"

namespace fbdr::core {

using ldap::EntryPtr;
using ldap::Query;

select::FilterSelector::SizeEstimator master_size_estimator(
    std::shared_ptr<server::DirectoryServer> master) {
  auto cache = std::make_shared<std::map<std::string, std::size_t>>();
  return [master = std::move(master), cache](const Query& query) -> std::size_t {
    const std::string key = query.key();
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    const std::size_t count = master->evaluate(query).size();
    (*cache)[key] = count;
    return count;
  };
}

FilterReplicationService::FilterReplicationService(
    std::shared_ptr<server::DirectoryServer> master, Config config,
    std::shared_ptr<ldap::TemplateRegistry> registry,
    std::optional<select::Generalizer> generalizer)
    : master_(std::move(master)),
      config_(config),
      replica_(master_->schema(), std::move(registry)),
      resync_(*master_),
      channel_(std::make_shared<net::DirectChannel>(resync_)) {
  replica_.set_query_cache_window(config_.query_cache_window);
  if (config_.selection) {
    selector_.emplace(*config_.selection,
                      generalizer ? std::move(*generalizer)
                                  : select::Generalizer(master_->schema()),
                      master_size_estimator(master_));
  }
}

FilterReplicationService::InstalledFilter* FilterReplicationService::find_installed(
    const std::string& key) {
  for (InstalledFilter& installed : sessions_) {
    if (installed.query.key() == key) return &installed;
  }
  return nullptr;
}

void FilterReplicationService::install(const Query& query) {
  install(query, SyncPolicy{});
}

void FilterReplicationService::set_channel(std::shared_ptr<net::Channel> channel) {
  channel_ = std::move(channel);
}

resync::ReSyncResponse FilterReplicationService::request(
    InstalledFilter& installed, const resync::ReSyncControl& control) {
  return net::exchange_with_retry(*channel_, installed.query, control,
                                  config_.retry, &installed.retries);
}

resync::ReSyncResponse FilterReplicationService::collect_pages(
    InstalledFilter& installed, resync::ReSyncResponse first) {
  // This service applies a poll transactionally (set_content with the folded
  // result), so pages are combined before applying. A transport failure
  // mid-drain propagates to the caller, which degrades the filter and later
  // heals through refetch() with a fresh session — the half-fetched batch is
  // simply discarded, never half-applied.
  while (first.more) {
    resync::ReSyncResponse page =
        request(installed, {resync::Mode::Poll, first.cookie});
    ++installed.paged_polls;
    first.cookie = page.cookie;
    first.more = page.more;
    first.complete_enumeration |= page.complete_enumeration;
    first.full_reload |= page.full_reload;
    first.pdus.insert(first.pdus.end(), page.pdus.begin(), page.pdus.end());
  }
  return first;
}

bool FilterReplicationService::adopt_full(InstalledFilter& installed,
                                          resync::ReSyncResponse response) {
  response = collect_pages(installed, std::move(response));
  installed.cookie = response.cookie;
  std::vector<EntryPtr> entries;
  entries.reserve(response.pdus.size());
  for (const resync::EntryPdu& pdu : response.pdus) {
    if (pdu.entry) entries.push_back(pdu.entry);
  }
  replica_.set_content(installed.replica_id, entries);
  installed.last_synced_tick = resync_.now();
  ++installed.full_reloads;
  return true;
}

bool FilterReplicationService::refetch(InstalledFilter& installed) {
  try {
    if (config_.reconcile) {
      const std::vector<EntryPtr> local =
          replica_.query_content(installed.replica_id);
      if (!local.empty()) {
        // Offer digests of the local content instead of accepting a full
        // reload (DESIGN.md §12).
        std::map<std::string, EntryPtr> snapshot;
        sync::ContentDigest digest;
        for (const EntryPtr& entry : local) {
          const std::string key = entry->dn().norm_key();
          snapshot.emplace(key, entry);
          digest.upsert(key, *entry);
        }
        auto offer = std::make_shared<resync::ReconcileRequest>();
        offer->round = 1;
        offer->root_digest = digest.root();
        offer->entry_count = digest.entry_count();
        offer->buckets = digest.bucket_digests();
        resync::ReSyncControl control{resync::Mode::Poll, ""};
        control.reconcile = std::move(offer);
        resync::ReSyncResponse response = request(installed, control);
        if (response.busy) {
          ++installed.busy_rejections;
          return false;
        }
        installed.cookie = response.cookie;
        if (response.reconcile && !response.reconcile->fallback) {
          try {
            if (response.reconcile->in_sync) {
              // Local content already exact: nothing shipped.
              installed.last_synced_tick = resync_.now();
              ++installed.reconciles;
              return true;
            }
            // Round 2: fingerprints for the divergent buckets; the answer
            // is the exact diff.
            auto upload = std::make_shared<resync::ReconcileRequest>();
            upload->round = 2;
            std::set<std::uint32_t> wanted(
                response.reconcile->need_buckets.begin(),
                response.reconcile->need_buckets.end());
            for (const auto& [key, entry] : snapshot) {
              if (wanted.count(sync::ContentDigest::bucket_of(key)) == 0) {
                continue;
              }
              upload->fingerprints.push_back(
                  {entry->dn(), sync::ContentDigest::hash_entry(*entry)});
            }
            resync::ReSyncControl round2{resync::Mode::Poll, installed.cookie};
            round2.reconcile = std::move(upload);
            resync::ReSyncResponse diff = request(installed, round2);
            diff = collect_pages(installed, std::move(diff));
            installed.cookie = diff.cookie;
            installed.reconcile_entries_shipped += diff.pdus.size();
            apply_delta(installed, diff.pdus, /*complete_enumeration=*/false);
            installed.last_synced_tick = resync_.now();
            ++installed.reconciles;
            return true;
          } catch (const ldap::StaleCookieError&) {
            // Walk expired between rounds: plain reload below.
            installed.cookie.clear();
          }
        } else {
          // Walk fallback or a master that does not speak reconciliation:
          // the response body is the full content.
          return adopt_full(installed, std::move(response));
        }
      }
    }
    // Full-reload recovery: a fresh session's initial response carries the
    // whole content (possibly paged).
    resync::ReSyncResponse response =
        request(installed, {resync::Mode::Poll, ""});
    if (response.busy) {
      // Master at capacity: no session was created. Stay degraded and try
      // again on a later sync round — the local content keeps serving.
      ++installed.busy_rejections;
      return false;
    }
    return adopt_full(installed, std::move(response));
  } catch (const net::TransportError&) {
    return false;
  }
}

void FilterReplicationService::install(const Query& query, SyncPolicy policy) {
  if (find_installed(query.key())) return;
  InstalledFilter installed;
  installed.query = query;
  installed.policy = policy;
  if (installed.policy.interval == 0) installed.policy.interval = 1;
  installed.replica_id = replica_.add_query(query);
  // Open a ReSync session; the initial response carries the whole content
  // and is accounted as fetch/update traffic by the master. A transport
  // failure past the retry budget (or a busy rejection) propagates: a filter
  // must never start serving before it has content.
  try {
    resync::ReSyncResponse response =
        request(installed, {resync::Mode::Poll, ""});
    if (response.busy) {
      replica_.remove_query(installed.replica_id);
      throw ldap::BusyError("install of '" + query.to_string() +
                            "' rejected: master at session capacity");
    }
    response = collect_pages(installed, std::move(response));
    installed.cookie = response.cookie;
    std::vector<EntryPtr> entries;
    entries.reserve(response.pdus.size());
    for (const resync::EntryPdu& pdu : response.pdus) {
      if (pdu.entry) entries.push_back(pdu.entry);
    }
    replica_.set_content(installed.replica_id, entries);
  } catch (const net::TransportError&) {
    replica_.remove_query(installed.replica_id);
    throw;
  }
  installed.last_synced_tick = resync_.now();
  sessions_.push_back(std::move(installed));
}

void FilterReplicationService::uninstall(const Query& query) {
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->query.key() == query.key()) {
      try {
        channel_->exchange(it->query, {resync::Mode::SyncEnd, it->cookie});
      } catch (const net::TransportError&) {
        // Best effort: the master-side session expires under the admin
        // limit; the local filter is removed regardless.
      }
      replica_.remove_query(it->replica_id);
      sessions_.erase(it);
      return;
    }
  }
}

void FilterReplicationService::apply_revolution(
    const select::FilterSelector::Revolution& revolution) {
  for (const Query& query : revolution.dropped) {
    uninstall(query);
  }
  for (const Query& query : revolution.fetched) {
    try {
      install(query);
    } catch (const net::TransportError&) {
      // The link is down: skip this fetch; the filter simply is not
      // installed and a later revolution can pick it up again.
    }
  }
}

ServeOutcome FilterReplicationService::serve(const Query& query) {
  ServeOutcome outcome;
  const replica::Decision decision = replica_.handle(query);
  outcome.hit = decision.hit;
  outcome.from_cache =
      decision.hit && decision.answered_by.rfind("cache:", 0) == 0;
  if (outcome.hit && !outcome.from_cache) {
    // Graceful degradation: the hit still answers locally, but flag it when
    // the answering filter's session is down and its content may be stale.
    for (const InstalledFilter& installed : sessions_) {
      if (installed.degraded &&
          installed.query.to_string() == decision.answered_by) {
        outcome.stale = true;
        break;
      }
    }
  }

  if (!decision.hit) {
    // Miss: the master answers; optionally cache the user query with its
    // result for the temporal-locality window.
    if (config_.query_cache_window > 0) {
      replica_.cache_user_query(query, master_->evaluate(query));
    }
  }
  if (selector_) {
    if (const auto revolution = selector_->observe(query)) {
      apply_revolution(*revolution);
    }
  }
  return outcome;
}

void FilterReplicationService::apply_delta(
    InstalledFilter& installed, const std::vector<resync::EntryPdu>& pdus,
    bool complete_enumeration) {
  if (pdus.empty() && !complete_enumeration) return;
  // Rebuild this query's content from the delta: adds/mods upsert, deletes
  // drop. set_content needs the full list, so fold into a map first.
  std::map<std::string, EntryPtr> content;
  for (const EntryPtr& entry : replica_.query_content(installed.replica_id)) {
    content[entry->dn().norm_key()] = entry;
  }
  std::set<std::string> mentioned;
  for (const resync::EntryPdu& pdu : pdus) {
    switch (pdu.action) {
      case resync::Action::Add:
      case resync::Action::Modify:
        content[pdu.dn.norm_key()] = pdu.entry;
        break;
      case resync::Action::Delete:
        content.erase(pdu.dn.norm_key());
        break;
      case resync::Action::Retain:
        break;
    }
    if (complete_enumeration && pdu.action != resync::Action::Delete) {
      mentioned.insert(pdu.dn.norm_key());
    }
  }
  if (complete_enumeration) {
    // Equation (3): the poll enumerated the whole content — anything it did
    // not mention has left the filter and must be dropped, or the replica
    // would serve ghost entries after a degraded (history-less) poll.
    for (auto it = content.begin(); it != content.end();) {
      if (mentioned.count(it->first) == 0) {
        it = content.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<EntryPtr> entries;
  entries.reserve(content.size());
  for (auto& [key, entry] : content) entries.push_back(std::move(entry));
  replica_.set_content(installed.replica_id, entries);
}

void FilterReplicationService::sync() {
  resync_.pump();
  ++sync_round_;
  for (InstalledFilter& installed : sessions_) {
    // Consistency levels (§3.2): lower-priority filters poll every Nth sync.
    if (sync_round_ % installed.policy.interval != 0) continue;
    if (installed.degraded) {
      // Heal on reconnect: the full-reload recovery replaces whatever the
      // replica missed while the session was down.
      if (refetch(installed)) {
        installed.degraded = false;
        ++installed.recoveries;
      } else {
        ++installed.failed_syncs;
      }
      continue;
    }
    try {
      resync::ReSyncResponse response =
          request(installed, {resync::Mode::Poll, installed.cookie});
      response = collect_pages(installed, std::move(response));
      installed.cookie = response.cookie;
      installed.last_synced_tick = resync_.now();
      if (response.complete_enumeration) ++installed.degraded_polls;
      apply_delta(installed, response.pdus, response.complete_enumeration);
    } catch (const ldap::StaleCookieError&) {
      // Session expired or the master restarted: recover with a full
      // reload, or degrade if the link is down too.
      if (refetch(installed)) {
        ++installed.recoveries;
      } else {
        ++installed.failed_syncs;
        installed.degraded = true;
      }
    } catch (const net::TransportError&) {
      // Retry budget exhausted: degrade. The filter keeps serving
      // containment hits from its local (possibly stale) content.
      ++installed.failed_syncs;
      installed.degraded = true;
    }
  }
}

net::HealthStats FilterReplicationService::health() const {
  net::HealthStats stats;
  const std::uint64_t now = resync_.now();
  for (const InstalledFilter& installed : sessions_) {
    net::FilterHealth health;
    health.degraded = installed.degraded;
    health.ticks_behind = now > installed.last_synced_tick
                              ? now - installed.last_synced_tick
                              : 0;
    health.retries = installed.retries;
    health.recoveries = installed.recoveries;
    health.failed_syncs = installed.failed_syncs;
    health.busy_rejections = installed.busy_rejections;
    health.degraded_polls = installed.degraded_polls;
    health.paged_polls = installed.paged_polls;
    health.full_reloads = installed.full_reloads;
    health.reconciles = installed.reconciles;
    health.reconcile_entries_shipped = installed.reconcile_entries_shipped;
    stats.filters.emplace(installed.query.key(), health);
  }
  return stats;
}

std::uint64_t FilterReplicationService::revolutions() const {
  return selector_ ? selector_->revolutions() : 0;
}

SubtreeReplicationService::SubtreeReplicationService(
    std::shared_ptr<server::DirectoryServer> master, std::size_t entry_padding)
    : master_(std::move(master)),
      last_seq_(master_->journal().last_seq()),
      entry_padding_(entry_padding) {}

void SubtreeReplicationService::add_context(
    containment::ReplicationContext context) {
  replica_.add_context(std::move(context));
}

void SubtreeReplicationService::load() {
  replica_.load_content(*master_);
  last_seq_ = master_->journal().last_seq();
}

ServeOutcome SubtreeReplicationService::serve(const Query& query) {
  ServeOutcome outcome;
  outcome.hit = replica_.handle(query).hit;
  return outcome;
}

void SubtreeReplicationService::sync() {
  if (master_->journal().trimmed_up_to() > last_seq_) {
    // Journal compaction dropped changes this replica never shipped: the
    // per-change stream cannot be reconstructed, so reload the configured
    // contexts wholesale (the subtree analogue of the eq.(3) heal).
    load();
    traffic_.count_round_trip();
    return;
  }
  for (const server::ChangeRecord* record : master_->journal().since(last_seq_)) {
    last_seq_ = record->seq;
    // Every change inside a replicated subtree must be shipped: full entry
    // for add/modify, DN for delete; a rename ships delete + add.
    switch (record->type) {
      case server::ChangeType::Add:
      case server::ChangeType::Modify:
        if (replica_.covers(record->dn) && record->after) {
          traffic_.count_entry(record->after->approx_size_bytes(entry_padding_));
        }
        break;
      case server::ChangeType::Delete:
        if (replica_.covers(record->dn)) {
          traffic_.count_dn(record->dn.to_string().size());
        }
        break;
      case server::ChangeType::ModifyDn:
        if (replica_.covers(record->dn)) {
          traffic_.count_dn(record->dn.to_string().size());
        }
        if (replica_.covers(record->new_dn) && record->after) {
          traffic_.count_entry(record->after->approx_size_bytes(entry_padding_));
        }
        break;
    }
  }
  traffic_.count_round_trip();
  // The shipped changes themselves keep the replica's copy current; the
  // answerability decision depends only on the configured contexts, so no
  // full rescan is needed here.
}

}  // namespace fbdr::core
