#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ldap/query.h"
#include "resync/protocol.h"

namespace fbdr::wire {

/// A frame or payload could not be decoded: truncated input, a checksum
/// mismatch, a length field pointing past the buffer, an out-of-range enum.
/// Every decoder entry point throws exactly this (never crashes, never
/// allocates unbounded memory): the transport layer maps it to
/// net::TransportError, so a garbled frame heals through the same
/// retry/replay-cookie machinery as a dropped one.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

using Bytes = std::vector<std::uint8_t>;

/// First byte of every payload: what the remaining TLV fields describe.
enum class FrameKind : std::uint8_t {
  Request = 1,   // query + ReSyncControl
  Response = 2,  // ReSyncResponse
  Abandon = 3,   // one-way cookie abandon
  Error = 4,     // typed protocol rejection crossing the wire
};

/// A decoded request: the two arguments of ReSyncEndpoint::handle.
struct RequestFrame {
  ldap::Query query;
  resync::ReSyncControl control;
};

/// A protocol-level rejection encoded onto the wire. The endpoint side of a
/// framed link catches the ldap error taxonomy, ships it as one of these,
/// and the client side rethrows the same type — so framed and direct links
/// expose identical exception behaviour at the Channel seam.
struct ErrorFrame {
  enum class Kind : std::uint8_t {
    Protocol = 1,
    StaleCookie = 2,
    Busy = 3,
    Operation = 4,
  };

  Kind kind = Kind::Protocol;
  std::int32_t result_code = 0;  // ldap::ResultCode, Operation only
  std::string message;
};

/// The length-prefixed TLV codec for the ReSync protocol (DESIGN.md §14).
///
/// Payloads are a FrameKind byte followed by TLV fields: tag (u8), length
/// (u32 big-endian), value. Decoders iterate the fields of each extent and
/// skip unknown tags, so optional protocol features map to absent tags
/// (today's "version gating by field absence" for reconciliation) and new
/// fields can be added without breaking old decoders. Integers are
/// big-endian fixed-width; strings are u32 length + bytes.
///
/// A frame is u16 magic + u8 codec version + u8 reserved (zero) + u32
/// payload length + u64 FNV-1a checksum + payload. The magic and version
/// are what keep a frame honest once it crosses a real process boundary: a
/// stray connection speaking another protocol (or a peer running an
/// incompatible codec) is rejected by header validation before a single
/// payload byte is read, and the checksum turns byte-level corruption into
/// a deterministic CodecError instead of silently decoding flipped bits
/// into wrong content.
class Codec {
 public:
  /// First two bytes of every frame on the wire.
  static constexpr std::uint16_t kMagic = 0xFBD1;
  /// Bumped on incompatible changes to the frame layout or TLV encoding.
  /// (TLV additions are compatible — unknown tags are skipped — so this
  /// only moves when the header or an existing field changes shape.)
  static constexpr std::uint8_t kCodecVersion = 1;
  static constexpr std::size_t kFrameHeaderBytes = 16;
  /// Upper bound on a sane payload; lengths beyond it are rejected before
  /// any allocation happens.
  static constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 30;
  /// Filter AST nesting bound: deeper decodes are rejected (a crafted
  /// payload must not be able to exhaust the stack).
  static constexpr int kMaxFilterDepth = 64;

  // --- payload encode ---
  static Bytes encode_request(const ldap::Query& query,
                              const resync::ReSyncControl& control);
  static Bytes encode_response(const resync::ReSyncResponse& response);
  static Bytes encode_abandon(const std::string& cookie);
  static Bytes encode_error(const ErrorFrame& error);

  // --- payload decode (throws CodecError) ---
  static FrameKind kind_of(const Bytes& payload);
  static RequestFrame decode_request(const Bytes& payload);
  static resync::ReSyncResponse decode_response(const Bytes& payload);
  static std::string decode_abandon(const Bytes& payload);
  static ErrorFrame decode_error(const Bytes& payload);

  // --- framing ---
  static Bytes frame(const Bytes& payload);
  static Bytes deframe(const Bytes& frame);

  /// Validates the fixed-size header of a (possibly still incomplete) frame
  /// — magic, codec version, payload length bound — and returns the payload
  /// length it declares. `header` must point at kFrameHeaderBytes bytes.
  /// This is the shared first line of defence of deframe() and the socket
  /// transports' stream reassembly: everything that can be rejected before
  /// buffering a payload is rejected here, with a typed CodecError.
  static std::size_t validate_header(const std::uint8_t* header);

  /// FNV-1a 64 over a byte span (the frame checksum).
  static std::uint64_t checksum(const std::uint8_t* data, std::size_t size);

  /// Rethrows a decoded ErrorFrame as its original typed ldap exception.
  [[noreturn]] static void throw_error(const ErrorFrame& error);
};

}  // namespace fbdr::wire
