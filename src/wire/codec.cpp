#include "wire/codec.h"

#include <utility>

#include "ldap/error.h"

namespace fbdr::wire {
namespace {

// --- field tags ---------------------------------------------------------
// Per-struct tag spaces; decoders skip tags they do not know, so absent
// optional fields and future additions both parse cleanly (DESIGN.md §14).

// Request payload
constexpr std::uint8_t kReqQuery = 0x01;
constexpr std::uint8_t kReqControl = 0x02;

// ldap::Query
constexpr std::uint8_t kQueryBase = 0x01;
constexpr std::uint8_t kQueryScope = 0x02;
constexpr std::uint8_t kQueryFilter = 0x03;
constexpr std::uint8_t kQueryAttrs = 0x04;

// resync::ReSyncControl
constexpr std::uint8_t kCtlMode = 0x01;
constexpr std::uint8_t kCtlCookie = 0x02;
constexpr std::uint8_t kCtlReconcile = 0x03;

// resync::ReconcileRequest
constexpr std::uint8_t kRcqRound = 0x01;
constexpr std::uint8_t kRcqRootDigest = 0x02;
constexpr std::uint8_t kRcqEntryCount = 0x03;
constexpr std::uint8_t kRcqBucket = 0x04;       // repeated
constexpr std::uint8_t kRcqFingerprint = 0x05;  // repeated

// resync::ReSyncResponse
constexpr std::uint8_t kRspPdu = 0x01;  // repeated
constexpr std::uint8_t kRspCookie = 0x02;
constexpr std::uint8_t kRspFlags = 0x03;
constexpr std::uint8_t kRspReferral = 0x04;
constexpr std::uint8_t kRspOriginTime = 0x05;
constexpr std::uint8_t kRspReconcile = 0x06;

// resync::EntryPdu
constexpr std::uint8_t kPduAction = 0x01;
constexpr std::uint8_t kPduDn = 0x02;
constexpr std::uint8_t kPduEntry = 0x03;

// resync::ReconcileResponse
constexpr std::uint8_t kRcpFlags = 0x01;
constexpr std::uint8_t kRcpNeedBuckets = 0x02;

// Abandon payload
constexpr std::uint8_t kAbnCookie = 0x01;

// Error payload
constexpr std::uint8_t kErrKind = 0x01;
constexpr std::uint8_t kErrResultCode = 0x02;
constexpr std::uint8_t kErrMessage = 0x03;

// Response flag bits (kRspFlags)
constexpr std::uint8_t kFlagPersistent = 0x01;
constexpr std::uint8_t kFlagFullReload = 0x02;
constexpr std::uint8_t kFlagCompleteEnumeration = 0x04;
constexpr std::uint8_t kFlagBusy = 0x08;
constexpr std::uint8_t kFlagMore = 0x10;
constexpr std::uint8_t kFlagContinued = 0x20;

// ReconcileResponse flag bits (kRcpFlags)
constexpr std::uint8_t kFlagInSync = 0x01;
constexpr std::uint8_t kFlagFallback = 0x02;

// --- primitive writer ---------------------------------------------------

class Writer {
 public:
  Bytes take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Writes one TLV field: tag, then a length backpatched around `body`.
  template <typename Body>
  void tlv(std::uint8_t tag, Body&& body) {
    u8(tag);
    const std::size_t at = out_.size();
    u32(0);
    body(*this);
    const std::size_t len = out_.size() - at - 4;
    out_[at] = static_cast<std::uint8_t>(len >> 24);
    out_[at + 1] = static_cast<std::uint8_t>(len >> 16);
    out_[at + 2] = static_cast<std::uint8_t>(len >> 8);
    out_[at + 3] = static_cast<std::uint8_t>(len);
  }

 private:
  Bytes out_;
};

// --- primitive reader ---------------------------------------------------

/// Bounds-checked cursor over a byte extent. Every length and count is
/// validated against the remaining bytes *before* any allocation, so a
/// hostile length field fails with CodecError instead of an OOM.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// Consumes `len` bytes and returns a sub-reader bounded to them — the
  /// extent of one TLV value. Unknown tags are skipped by discarding it.
  Reader field(std::size_t len) {
    need(len);
    Reader sub(data_ + pos_, len);
    pos_ += len;
    return sub;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw CodecError("truncated payload: need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- ldap value encoders -------------------------------------------------

void put_dn(Writer& w, const ldap::Dn& dn) {
  w.u32(static_cast<std::uint32_t>(dn.rdns().size()));
  for (const ldap::Rdn& rdn : dn.rdns()) {
    w.str(rdn.type());
    w.str(rdn.value());
  }
}

ldap::Dn get_dn(Reader& r) {
  const std::uint32_t count = r.u32();
  std::vector<ldap::Rdn> rdns;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string type = r.str();
    const std::string value = r.str();
    rdns.emplace_back(type, value);
  }
  return ldap::Dn::from_rdns(std::move(rdns));
}

void put_filter(Writer& w, const ldap::Filter& filter) {
  w.u8(static_cast<std::uint8_t>(filter.kind()));
  switch (filter.kind()) {
    case ldap::FilterKind::And:
    case ldap::FilterKind::Or:
      w.u32(static_cast<std::uint32_t>(filter.children().size()));
      for (const ldap::FilterPtr& child : filter.children()) {
        put_filter(w, *child);
      }
      break;
    case ldap::FilterKind::Not:
      put_filter(w, *filter.children().front());
      break;
    case ldap::FilterKind::Equality:
    case ldap::FilterKind::GreaterEq:
    case ldap::FilterKind::LessEq:
      w.str(filter.attribute());
      w.str(filter.value());
      break;
    case ldap::FilterKind::Present:
      w.str(filter.attribute());
      break;
    case ldap::FilterKind::Substring: {
      w.str(filter.attribute());
      const ldap::SubstringPattern& pattern = filter.substrings();
      w.str(pattern.initial);
      w.u32(static_cast<std::uint32_t>(pattern.any.size()));
      for (const std::string& part : pattern.any) w.str(part);
      w.str(pattern.final);
      break;
    }
  }
}

ldap::FilterPtr get_filter(Reader& r, int depth) {
  if (depth > Codec::kMaxFilterDepth) {
    throw CodecError("filter nesting exceeds depth limit");
  }
  const std::uint8_t kind = r.u8();
  switch (static_cast<ldap::FilterKind>(kind)) {
    case ldap::FilterKind::And:
    case ldap::FilterKind::Or: {
      const std::uint32_t count = r.u32();
      std::vector<ldap::FilterPtr> children;
      for (std::uint32_t i = 0; i < count; ++i) {
        children.push_back(get_filter(r, depth + 1));
      }
      return kind == static_cast<std::uint8_t>(ldap::FilterKind::And)
                 ? ldap::Filter::make_and(std::move(children))
                 : ldap::Filter::make_or(std::move(children));
    }
    case ldap::FilterKind::Not:
      return ldap::Filter::make_not(get_filter(r, depth + 1));
    case ldap::FilterKind::Equality: {
      const std::string attr = r.str();
      return ldap::Filter::equality(attr, r.str());
    }
    case ldap::FilterKind::GreaterEq: {
      const std::string attr = r.str();
      return ldap::Filter::greater_eq(attr, r.str());
    }
    case ldap::FilterKind::LessEq: {
      const std::string attr = r.str();
      return ldap::Filter::less_eq(attr, r.str());
    }
    case ldap::FilterKind::Present:
      return ldap::Filter::present(r.str());
    case ldap::FilterKind::Substring: {
      const std::string attr = r.str();
      ldap::SubstringPattern pattern;
      pattern.initial = r.str();
      const std::uint32_t any = r.u32();
      for (std::uint32_t i = 0; i < any; ++i) pattern.any.push_back(r.str());
      pattern.final = r.str();
      return ldap::Filter::substring(attr, std::move(pattern));
    }
  }
  throw CodecError("unknown filter kind " + std::to_string(kind));
}

void put_entry(Writer& w, const ldap::Entry& entry) {
  put_dn(w, entry.dn());
  w.u32(static_cast<std::uint32_t>(entry.attributes().size()));
  for (const auto& [name, values] : entry.attributes()) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(values.size()));
    for (const std::string& value : values) w.str(value);
  }
}

ldap::EntryPtr get_entry(Reader& r) {
  auto entry = std::make_shared<ldap::Entry>(get_dn(r));
  const std::uint32_t attrs = r.u32();
  for (std::uint32_t i = 0; i < attrs; ++i) {
    const std::string name = r.str();
    const std::uint32_t count = r.u32();
    std::vector<std::string> values;
    for (std::uint32_t j = 0; j < count; ++j) values.push_back(r.str());
    entry->set_values(name, std::move(values));
  }
  return entry;
}

void put_query(Writer& w, const ldap::Query& query) {
  if (!query.base.is_root()) {
    w.tlv(kQueryBase, [&](Writer& f) { put_dn(f, query.base); });
  }
  if (query.scope != ldap::Scope::Subtree) {
    w.tlv(kQueryScope,
          [&](Writer& f) { f.u8(static_cast<std::uint8_t>(query.scope)); });
  }
  if (query.filter != nullptr) {
    w.tlv(kQueryFilter, [&](Writer& f) { put_filter(f, *query.filter); });
  }
  if (!(query.attrs == ldap::AttributeSelection{})) {
    w.tlv(kQueryAttrs, [&](Writer& f) {
      f.u8(query.attrs.all ? 1 : 0);
      f.u32(static_cast<std::uint32_t>(query.attrs.names.size()));
      for (const std::string& name : query.attrs.names) f.str(name);
    });
  }
}

ldap::Query get_query(Reader extent) {
  ldap::Query query;
  query.filter = nullptr;  // absent tag means "no filter", not match_all
  while (!extent.done()) {
    const std::uint8_t tag = extent.u8();
    Reader f = extent.field(extent.u32());
    switch (tag) {
      case kQueryBase:
        query.base = get_dn(f);
        break;
      case kQueryScope: {
        const std::uint8_t scope = f.u8();
        if (scope > static_cast<std::uint8_t>(ldap::Scope::Subtree)) {
          throw CodecError("scope out of range: " + std::to_string(scope));
        }
        query.scope = static_cast<ldap::Scope>(scope);
        break;
      }
      case kQueryFilter:
        query.filter = get_filter(f, 0);
        break;
      case kQueryAttrs: {
        query.attrs.all = f.u8() != 0;
        query.attrs.names.clear();
        const std::uint32_t count = f.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          query.attrs.names.push_back(f.str());
        }
        break;
      }
      default:
        break;  // unknown field from a newer peer: skip
    }
  }
  return query;
}

void put_reconcile_request(Writer& w, const resync::ReconcileRequest& req) {
  if (req.round != 1) {
    w.tlv(kRcqRound,
          [&](Writer& f) { f.u32(static_cast<std::uint32_t>(req.round)); });
  }
  if (req.root_digest != 0) {
    w.tlv(kRcqRootDigest, [&](Writer& f) { f.u64(req.root_digest); });
  }
  if (req.entry_count != 0) {
    w.tlv(kRcqEntryCount, [&](Writer& f) { f.u64(req.entry_count); });
  }
  for (const resync::DigestPdu& bucket : req.buckets) {
    w.tlv(kRcqBucket, [&](Writer& f) {
      f.u32(bucket.bucket);
      f.u64(bucket.digest);
      f.u64(bucket.count);
    });
  }
  for (const sync::EntryFingerprint& fp : req.fingerprints) {
    w.tlv(kRcqFingerprint, [&](Writer& f) {
      put_dn(f, fp.dn);
      f.u64(fp.hash);
    });
  }
}

resync::ReconcileRequest get_reconcile_request(Reader extent) {
  resync::ReconcileRequest req;
  while (!extent.done()) {
    const std::uint8_t tag = extent.u8();
    Reader f = extent.field(extent.u32());
    switch (tag) {
      case kRcqRound:
        req.round = static_cast<int>(f.u32());
        break;
      case kRcqRootDigest:
        req.root_digest = f.u64();
        break;
      case kRcqEntryCount:
        req.entry_count = f.u64();
        break;
      case kRcqBucket: {
        resync::DigestPdu bucket;
        bucket.bucket = f.u32();
        bucket.digest = f.u64();
        bucket.count = f.u64();
        req.buckets.push_back(bucket);
        break;
      }
      case kRcqFingerprint: {
        sync::EntryFingerprint fp;
        fp.dn = get_dn(f);
        fp.hash = f.u64();
        req.fingerprints.push_back(std::move(fp));
        break;
      }
      default:
        break;
    }
  }
  return req;
}

void put_control(Writer& w, const resync::ReSyncControl& control) {
  if (control.mode != resync::Mode::Poll) {
    w.tlv(kCtlMode,
          [&](Writer& f) { f.u8(static_cast<std::uint8_t>(control.mode)); });
  }
  if (!control.cookie.empty()) {
    w.tlv(kCtlCookie, [&](Writer& f) { f.str(control.cookie); });
  }
  if (control.reconcile != nullptr) {
    w.tlv(kCtlReconcile,
          [&](Writer& f) { put_reconcile_request(f, *control.reconcile); });
  }
}

resync::ReSyncControl get_control(Reader extent) {
  resync::ReSyncControl control;
  while (!extent.done()) {
    const std::uint8_t tag = extent.u8();
    Reader f = extent.field(extent.u32());
    switch (tag) {
      case kCtlMode: {
        const std::uint8_t mode = f.u8();
        if (mode > static_cast<std::uint8_t>(resync::Mode::SyncEnd)) {
          throw CodecError("mode out of range: " + std::to_string(mode));
        }
        control.mode = static_cast<resync::Mode>(mode);
        break;
      }
      case kCtlCookie:
        control.cookie = f.str();
        break;
      case kCtlReconcile:
        control.reconcile = std::make_shared<const resync::ReconcileRequest>(
            get_reconcile_request(f));
        break;
      default:
        break;
    }
  }
  return control;
}

void put_pdu(Writer& w, const resync::EntryPdu& pdu) {
  if (pdu.action != resync::Action::Add) {
    w.tlv(kPduAction,
          [&](Writer& f) { f.u8(static_cast<std::uint8_t>(pdu.action)); });
  }
  if (!pdu.dn.is_root()) {
    w.tlv(kPduDn, [&](Writer& f) { put_dn(f, pdu.dn); });
  }
  if (pdu.entry != nullptr) {
    w.tlv(kPduEntry, [&](Writer& f) { put_entry(f, *pdu.entry); });
  }
}

resync::EntryPdu get_pdu(Reader extent) {
  resync::EntryPdu pdu;
  while (!extent.done()) {
    const std::uint8_t tag = extent.u8();
    Reader f = extent.field(extent.u32());
    switch (tag) {
      case kPduAction: {
        const std::uint8_t action = f.u8();
        if (action > static_cast<std::uint8_t>(resync::Action::Retain)) {
          throw CodecError("action out of range: " + std::to_string(action));
        }
        pdu.action = static_cast<resync::Action>(action);
        break;
      }
      case kPduDn:
        pdu.dn = get_dn(f);
        break;
      case kPduEntry:
        pdu.entry = get_entry(f);
        break;
      default:
        break;
    }
  }
  return pdu;
}

void put_reconcile_response(Writer& w, const resync::ReconcileResponse& rsp) {
  std::uint8_t flags = 0;
  if (rsp.in_sync) flags |= kFlagInSync;
  if (rsp.fallback) flags |= kFlagFallback;
  if (flags != 0) {
    w.tlv(kRcpFlags, [&](Writer& f) { f.u8(flags); });
  }
  if (!rsp.need_buckets.empty()) {
    w.tlv(kRcpNeedBuckets, [&](Writer& f) {
      f.u32(static_cast<std::uint32_t>(rsp.need_buckets.size()));
      for (std::uint32_t bucket : rsp.need_buckets) f.u32(bucket);
    });
  }
}

resync::ReconcileResponse get_reconcile_response(Reader extent) {
  resync::ReconcileResponse rsp;
  while (!extent.done()) {
    const std::uint8_t tag = extent.u8();
    Reader f = extent.field(extent.u32());
    switch (tag) {
      case kRcpFlags: {
        const std::uint8_t flags = f.u8();
        rsp.in_sync = (flags & kFlagInSync) != 0;
        rsp.fallback = (flags & kFlagFallback) != 0;
        break;
      }
      case kRcpNeedBuckets: {
        const std::uint32_t count = f.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          rsp.need_buckets.push_back(f.u32());
        }
        break;
      }
      default:
        break;
    }
  }
  return rsp;
}

}  // namespace

// --- payload encode ------------------------------------------------------

Bytes Codec::encode_request(const ldap::Query& query,
                            const resync::ReSyncControl& control) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::Request));
  w.tlv(kReqQuery, [&](Writer& f) { put_query(f, query); });
  w.tlv(kReqControl, [&](Writer& f) { put_control(f, control); });
  return w.take();
}

Bytes Codec::encode_response(const resync::ReSyncResponse& response) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::Response));
  for (const resync::EntryPdu& pdu : response.pdus) {
    w.tlv(kRspPdu, [&](Writer& f) { put_pdu(f, pdu); });
  }
  if (!response.cookie.empty()) {
    w.tlv(kRspCookie, [&](Writer& f) { f.str(response.cookie); });
  }
  std::uint8_t flags = 0;
  if (response.persistent) flags |= kFlagPersistent;
  if (response.full_reload) flags |= kFlagFullReload;
  if (response.complete_enumeration) flags |= kFlagCompleteEnumeration;
  if (response.busy) flags |= kFlagBusy;
  if (response.more) flags |= kFlagMore;
  if (response.continued) flags |= kFlagContinued;
  if (flags != 0) {
    w.tlv(kRspFlags, [&](Writer& f) { f.u8(flags); });
  }
  if (!response.referral_url.empty()) {
    w.tlv(kRspReferral, [&](Writer& f) { f.str(response.referral_url); });
  }
  if (response.origin_time != 0) {
    w.tlv(kRspOriginTime, [&](Writer& f) { f.u64(response.origin_time); });
  }
  if (response.reconcile != nullptr) {
    w.tlv(kRspReconcile,
          [&](Writer& f) { put_reconcile_response(f, *response.reconcile); });
  }
  return w.take();
}

Bytes Codec::encode_abandon(const std::string& cookie) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::Abandon));
  if (!cookie.empty()) {
    w.tlv(kAbnCookie, [&](Writer& f) { f.str(cookie); });
  }
  return w.take();
}

Bytes Codec::encode_error(const ErrorFrame& error) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameKind::Error));
  w.tlv(kErrKind,
        [&](Writer& f) { f.u8(static_cast<std::uint8_t>(error.kind)); });
  if (error.result_code != 0) {
    w.tlv(kErrResultCode, [&](Writer& f) {
      f.u32(static_cast<std::uint32_t>(error.result_code));
    });
  }
  if (!error.message.empty()) {
    w.tlv(kErrMessage, [&](Writer& f) { f.str(error.message); });
  }
  return w.take();
}

// --- payload decode ------------------------------------------------------

FrameKind Codec::kind_of(const Bytes& payload) {
  if (payload.empty()) {
    throw CodecError("empty payload");
  }
  const std::uint8_t kind = payload.front();
  if (kind < static_cast<std::uint8_t>(FrameKind::Request) ||
      kind > static_cast<std::uint8_t>(FrameKind::Error)) {
    throw CodecError("unknown frame kind " + std::to_string(kind));
  }
  return static_cast<FrameKind>(kind);
}

RequestFrame Codec::decode_request(const Bytes& payload) {
  if (kind_of(payload) != FrameKind::Request) {
    throw CodecError("payload is not a request frame");
  }
  try {
    Reader r(payload.data() + 1, payload.size() - 1);
    RequestFrame request;
    request.query.filter = nullptr;
    while (!r.done()) {
      const std::uint8_t tag = r.u8();
      Reader f = r.field(r.u32());
      switch (tag) {
        case kReqQuery:
          request.query = get_query(f);
          break;
        case kReqControl:
          request.control = get_control(f);
          break;
        default:
          break;
      }
    }
    return request;
  } catch (const ldap::ParseError& e) {
    throw CodecError(std::string("malformed dn in request: ") + e.what());
  }
}

resync::ReSyncResponse Codec::decode_response(const Bytes& payload) {
  if (kind_of(payload) != FrameKind::Response) {
    throw CodecError("payload is not a response frame");
  }
  try {
    Reader r(payload.data() + 1, payload.size() - 1);
    resync::ReSyncResponse response;
    while (!r.done()) {
      const std::uint8_t tag = r.u8();
      Reader f = r.field(r.u32());
      switch (tag) {
        case kRspPdu:
          response.pdus.push_back(get_pdu(f));
          break;
        case kRspCookie:
          response.cookie = f.str();
          break;
        case kRspFlags: {
          const std::uint8_t flags = f.u8();
          response.persistent = (flags & kFlagPersistent) != 0;
          response.full_reload = (flags & kFlagFullReload) != 0;
          response.complete_enumeration = (flags & kFlagCompleteEnumeration) != 0;
          response.busy = (flags & kFlagBusy) != 0;
          response.more = (flags & kFlagMore) != 0;
          response.continued = (flags & kFlagContinued) != 0;
          break;
        }
        case kRspReferral:
          response.referral_url = f.str();
          break;
        case kRspOriginTime:
          response.origin_time = f.u64();
          break;
        case kRspReconcile:
          response.reconcile = std::make_shared<const resync::ReconcileResponse>(
              get_reconcile_response(f));
          break;
        default:
          break;
      }
    }
    return response;
  } catch (const ldap::ParseError& e) {
    throw CodecError(std::string("malformed dn in response: ") + e.what());
  }
}

std::string Codec::decode_abandon(const Bytes& payload) {
  if (kind_of(payload) != FrameKind::Abandon) {
    throw CodecError("payload is not an abandon frame");
  }
  Reader r(payload.data() + 1, payload.size() - 1);
  std::string cookie;
  while (!r.done()) {
    const std::uint8_t tag = r.u8();
    Reader f = r.field(r.u32());
    if (tag == kAbnCookie) cookie = f.str();
  }
  return cookie;
}

ErrorFrame Codec::decode_error(const Bytes& payload) {
  if (kind_of(payload) != FrameKind::Error) {
    throw CodecError("payload is not an error frame");
  }
  Reader r(payload.data() + 1, payload.size() - 1);
  ErrorFrame error;
  while (!r.done()) {
    const std::uint8_t tag = r.u8();
    Reader f = r.field(r.u32());
    switch (tag) {
      case kErrKind: {
        const std::uint8_t kind = f.u8();
        if (kind < static_cast<std::uint8_t>(ErrorFrame::Kind::Protocol) ||
            kind > static_cast<std::uint8_t>(ErrorFrame::Kind::Operation)) {
          throw CodecError("error kind out of range: " + std::to_string(kind));
        }
        error.kind = static_cast<ErrorFrame::Kind>(kind);
        break;
      }
      case kErrResultCode:
        error.result_code = static_cast<std::int32_t>(f.u32());
        break;
      case kErrMessage:
        error.message = f.str();
        break;
      default:
        break;
    }
  }
  return error;
}

// --- framing -------------------------------------------------------------

std::uint64_t Codec::checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

Bytes Codec::frame(const Bytes& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw CodecError("payload exceeds frame size limit");
  }
  Writer w;
  w.u8(static_cast<std::uint8_t>(kMagic >> 8));
  w.u8(static_cast<std::uint8_t>(kMagic));
  w.u8(kCodecVersion);
  w.u8(0);  // reserved, must be zero on send, ignored on receive
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(checksum(payload.data(), payload.size()));
  Bytes out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::size_t Codec::validate_header(const std::uint8_t* header) {
  const std::uint16_t magic = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(header[0]) << 8) | header[1]);
  if (magic != kMagic) {
    throw CodecError("bad frame magic: not an fbdr frame");
  }
  if (header[2] != kCodecVersion) {
    throw CodecError("unsupported codec version " + std::to_string(header[2]) +
                     " (speaking " + std::to_string(kCodecVersion) + ")");
  }
  const std::size_t length = (static_cast<std::size_t>(header[4]) << 24) |
                             (static_cast<std::size_t>(header[5]) << 16) |
                             (static_cast<std::size_t>(header[6]) << 8) |
                             static_cast<std::size_t>(header[7]);
  if (length > kMaxPayloadBytes) {
    throw CodecError("frame length exceeds payload limit");
  }
  return length;
}

Bytes Codec::deframe(const Bytes& frame) {
  if (frame.size() < kFrameHeaderBytes) {
    throw CodecError("short frame: " + std::to_string(frame.size()) + " bytes");
  }
  const std::size_t length = validate_header(frame.data());
  if (length != frame.size() - kFrameHeaderBytes) {
    throw CodecError("frame length mismatch");
  }
  Reader r(frame.data() + 8, 8);  // the checksum field
  const std::uint64_t expected = r.u64();
  const std::uint8_t* payload = frame.data() + kFrameHeaderBytes;
  if (checksum(payload, length) != expected) {
    throw CodecError("frame checksum mismatch");
  }
  return Bytes(payload, payload + length);
}

void Codec::throw_error(const ErrorFrame& error) {
  switch (error.kind) {
    case ErrorFrame::Kind::StaleCookie:
      throw ldap::StaleCookieError(error.message);
    case ErrorFrame::Kind::Busy:
      throw ldap::BusyError(error.message);
    case ErrorFrame::Kind::Operation:
      throw ldap::OperationError(static_cast<ldap::ResultCode>(error.result_code),
                                 error.message);
    case ErrorFrame::Kind::Protocol:
      break;
  }
  throw ldap::ProtocolError(error.message);
}

}  // namespace fbdr::wire
