#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/fault_injector.h"
#include "net/framed_channel.h"
#include "resync/master.h"
#include "server/directory_server.h"
#include "server/distributed.h"
#include "topology/relay_node.h"

namespace fbdr::topology {

/// One row of the per-hop health report: where the node sits, how far its
/// content trails the root, and what its sessions have been through.
struct NodeHealth {
  std::string name;
  std::string parent;               // "" for children of the root master
  std::size_t depth = 0;            // hops from the root (root itself = 0)
  std::uint64_t lag_ticks = 0;      // root clock now - node's root_time()
  bool down = false;
  bool degraded = false;            // any upstream session degraded
  std::uint64_t epoch = 0;
  std::size_t downstream_sessions = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t reparents = 0;
  std::uint64_t failed_streak = 0;
  // Budget health of this hop's downstream-facing master (ResourceGovernor
  // view): what overload enforcement has done and what the node holds now.
  std::size_t degraded_sessions = 0;   // poll sessions degraded to eq.(3)
  std::uint64_t busy_rejections = 0;   // initials bounced at session capacity
  std::uint64_t evicted_sessions = 0;  // sessions dropped past the poll deadline
  std::uint64_t history_units = 0;     // current history accounting units held
  std::uint64_t replay_bytes = 0;      // current replay-cache body bytes held
  std::uint64_t upstream_busy = 0;     // this node's refetches bounced by parent
  // Recovery-mode split (DESIGN.md §12): how this node's upstream sessions
  // healed, and what the digest walks cost in diff PDUs.
  std::uint64_t full_reloads = 0;
  std::uint64_t reconciles = 0;
  std::uint64_t reconcile_entries_shipped = 0;
};

/// Builds and drives an N-node replication tree rooted at one enterprise
/// master: relay nodes (and leaves, which are simply relays nobody syncs
/// from) wired over DirectChannel or — when a FaultConfig is given —
/// per-link FaultyChannels with distinct deterministic seeds.
///
/// tick() runs one logical round deepest-first: every node polls the content
/// its parent holds *now*, then the parent refreshes from its own parent,
/// and the root pumps and advances last. The measured staleness is therefore
/// one tick per hop — the latency cost a cascade trades for fan-out relief
/// at the root, which is exactly what bench_topology_fanout quantifies.
///
/// The runtime also owns the two control-plane reactions of the design:
///   - referral chasing: a parent that does not admit a node's filter set
///     answers with a referral; the runtime re-wires the node to the
///     referred URL (walking up ancestor by ancestor, terminating at the
///     root, which admits everything);
///   - re-parenting: a node whose upstream link has failed for
///     `reparent_after` consecutive sync rounds is re-wired to its
///     grandparent, adopting the orphaned subtree below it unchanged.
class TopologyRuntime {
 public:
  struct Options {
    /// Retry discipline for every upstream link.
    net::RetryPolicy retry;
    /// Admin idle limit for relay downstream sessions (0 = never expire).
    /// The root master's limit is configured on root_master() directly.
    std::uint64_t session_time_limit = 0;
    /// Consecutive failed sync rounds before a node is re-wired to its
    /// grandparent (0 disables re-parenting).
    std::uint64_t reparent_after = 0;
    /// Resource budgets installed on every relay's downstream-facing master
    /// (all-zero = ungoverned). The root master is governed separately via
    /// root_master().set_resource_limits().
    resync::ResourceLimits relay_limits;
    /// When set, every link is a FaultyChannel seeded from this config
    /// (seed + link index), so one schedule replays deterministically.
    std::optional<net::FaultConfig> faults;
    /// Default for per-link framing: when true, upstream links run over the
    /// wire codec (FramedChannel over EndpointPipe, or over FaultyPipe when
    /// `faults` is set — which additionally enables the byte-level
    /// corrupt/truncate faults). Overridable per node in add_node().
    bool framed = false;
  };

  TopologyRuntime(std::shared_ptr<server::DirectoryServer> root,
                  Options options);

  /// Adds a node named `name` under `parent` ("" = the root master) with
  /// the given replicated filter set. Parents must be added before their
  /// children. Content is not fetched until install() or the first tick().
  /// `framed` overrides Options::framed for this node's upstream link, so
  /// trees can mix framed and direct hops.
  RelayNode& add_node(const std::string& name, const std::string& parent,
                      const std::vector<ldap::Query>& filters,
                      std::optional<bool> framed = std::nullopt);

  /// Opens every node's upstream sessions top-down, chasing referrals
  /// (nodes whose parent does not admit them are re-wired up the ancestor
  /// chain). Returns true when every session is established.
  bool install();

  /// One logical round over the whole tree (see class comment).
  void tick();

  /// Runs `rounds` ticks.
  void run(std::uint64_t rounds);

  // --- failure injection (chaos tests) ---

  void crash_node(const std::string& name);
  void restart_node(const std::string& name);

  /// The FaultyChannel carrying `name`'s upstream link; null under
  /// DirectChannel or framed wiring. Reconfigure it to shape per-link
  /// fault phases.
  net::FaultyChannel* fault_channel(const std::string& name);

  /// The FaultyPipe under `name`'s framed upstream link; null unless the
  /// link is framed AND Options::faults is set.
  net::FaultyPipe* fault_pipe(const std::string& name);

  /// The FramedChannel carrying `name`'s upstream link (exact per-link
  /// traffic accounting); null on non-framed links.
  net::FramedChannel* framed_link(const std::string& name);

  // --- introspection ---

  RelayNode& node(const std::string& name);
  const RelayNode& node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  std::vector<std::string> node_names() const;

  /// Current parent of `name`: "" when wired to the root master.
  const std::string& parent_of(const std::string& name) const;
  std::size_t depth_of(const std::string& name) const;

  server::DirectoryServer& root() noexcept { return *root_; }
  resync::ReSyncMaster& root_master() noexcept { return root_endpoint_; }

  /// Per-node health, root's children first, deepest last.
  std::vector<NodeHealth> health() const;

  /// Every endpoint (root master + all nodes) addressable by URL, for
  /// server::DistributedClient referral chasing across the tree.
  server::ServerMap server_map() const;

 private:
  struct Node {
    std::string name;
    std::string parent;  // "" = root
    bool framed = false;  // upstream link runs over the wire codec
    std::unique_ptr<RelayNode> relay;
  };

  Node& find_node(const std::string& name);
  const Node& find_node(const std::string& name) const;
  std::size_t depth_of(const Node& node) const;

  /// The ReSync endpoint serving `url`: the root master or a node.
  resync::ReSyncEndpoint* endpoint_at(const std::string& url);

  /// A fresh channel to `endpoint` (faulty when Options::faults is set,
  /// framed when the node's link is framed).
  std::shared_ptr<net::Channel> make_channel(resync::ReSyncEndpoint& endpoint,
                                             const std::string& node_name,
                                             bool framed);

  /// Re-wires `node` to the endpoint at `url` (referral chase target or
  /// grandparent). Falls back to the root when the URL is unknown.
  void rewire_to(Node& node, const std::string& url);

  /// Node names ordered deepest-first (the tick order).
  std::vector<const Node*> by_depth_desc() const;

  /// Referral chase + re-parent policy for one node, after its sync round.
  void react(Node& node);

  std::shared_ptr<server::DirectoryServer> root_;
  Options options_;
  resync::ReSyncMaster root_endpoint_;
  std::vector<std::unique_ptr<Node>> nodes_;  // insertion order
  std::map<std::string, net::FaultyChannel*> fault_channels_;
  std::map<std::string, net::FaultyPipe*> fault_pipes_;
  std::map<std::string, net::FramedChannel*> framed_links_;
  std::uint64_t link_counter_ = 0;
};

}  // namespace fbdr::topology
