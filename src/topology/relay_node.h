#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/stats.h"
#include "replica/filter_replica.h"
#include "resync/endpoint.h"
#include "resync/master.h"
#include "server/directory_server.h"
#include "server/endpoint.h"

namespace fbdr::topology {

/// A replica site promoted to a relay master (the cascaded deployment the
/// paper's case study stops short of): the node runs ordinary ReSync update
/// sessions against its parent over a net::Channel, materializes the
/// replicated content in a local journaled mirror DirectoryServer, and
/// re-serves that content downstream through a full ReSyncMaster — change
/// routing, replay-safe cookies, session expiry and all. A replica already
/// stores the exact content of its replicated queries plus their meta
/// information (§3), which is everything a master needs to serve sessions
/// whose queries are contained (Props. 1-3, §4) in the replicated set.
///
/// Admission: a downstream session is accepted only when the containment
/// engine proves its query contained in one of the locally replicated
/// queries. Anything else is answered with a referral to the parent,
/// mirroring the default-referral bounce of §2.3 (and the behaviour of
/// replica::FilterReplicaEndpoint on the client-search side, which this
/// node also implements).
///
/// Cookie lineage: every downstream cookie is prefixed with the relay's
/// epoch ("e<epoch>!rs-<id>#<seq>"). The epoch advances whenever the
/// relay's content is rebuilt wholesale — a crash/restart (reset()), an
/// upstream StaleCookieError, or any other full-reload recovery — so
/// descendants holding pre-rebuild cookies receive StaleCookieError and
/// fall back to their own full reloads instead of silently resuming against
/// a torn store. The bump cascades: a descendant's forced reload is itself
/// a full-reload recovery, so it bumps its own epoch for *its* children.
class RelayNode final : public resync::ReSyncEndpoint,
                        public server::SearchEndpoint {
 public:
  struct Config {
    std::string name;          // node name; url becomes "ldap://<name>"
    ldap::Dn suffix;           // naming context of the local mirror
    net::RetryPolicy retry;    // upstream transport retry discipline
    /// Admin idle limit for downstream sessions (0 = never expire).
    std::uint64_t session_time_limit = 0;
    /// Resource budgets for the downstream-facing master (all-zero = the
    /// ungoverned default). journal_retention_records applies to the local
    /// mirror's change journal; the other limits govern descendant sessions
    /// exactly as on the root master (busy admission, eq.(3) degradation,
    /// paging, replay stripping, poll-deadline eviction).
    resync::ResourceLimits downstream_limits;
    /// Re-establishing an upstream session first offers digests of the
    /// mirror's view so only divergent entries ship (DESIGN.md §12). A
    /// successful walk journals the diff as ordinary changes, so descendant
    /// sessions ride through without an epoch bump — the savings cascade.
    bool reconcile = true;
    /// Sharded-pump configuration for the downstream-facing master
    /// (DESIGN.md §13): relays re-pump through the same machinery as the
    /// root, so a fan-out-heavy relay can spread its downstream sessions
    /// across pump_shards hash partitions driven by pump_threads workers.
    /// The defaults (1, 0) are the exact serial master.
    std::size_t pump_shards = 1;
    std::size_t pump_threads = 0;
    /// Whether this node's upstream link runs over the framed wire codec
    /// (net::FramedChannel) instead of in-process struct passing. Recorded
    /// by the TopologyRuntime when it wires the link; the relay's own
    /// protocol behaviour is identical either way.
    bool framed = false;
  };

  explicit RelayNode(Config config,
                     const ldap::Schema& schema = ldap::Schema::default_instance(),
                     std::shared_ptr<ldap::TemplateRegistry> registry = nullptr);

  // --- wiring (driven by the TopologyRuntime) ---

  /// Attaches the upstream link. `parent_url` is the referral target handed
  /// to downstream queries this relay does not admit.
  void connect(std::shared_ptr<net::Channel> channel, std::string parent_url);

  /// Declares a replicated query (the admission set). Content is fetched by
  /// install_all()/sync().
  void add_filter(const ldap::Query& query);

  /// Opens an upstream session for every filter that has none, fetching the
  /// initial full content. A referral from the parent sets referred_to()
  /// and stops (the runtime re-wires the node and retries); a transport
  /// failure leaves the remaining filters degraded (they heal on sync()).
  /// Returns true when every filter holds an active session.
  bool install_all();

  /// One upstream sync round: polls every session, applies the deltas to
  /// the mirror (journaled, so the downstream master can route them),
  /// recovers stale sessions with full reloads, then pumps the downstream
  /// sessions and advances the downstream clock by one tick.
  void sync();

  /// Re-targets the upstream link (referral chase or re-parenting after
  /// sustained parent failure). Every session is rebuilt from scratch at
  /// the new parent on the next install_all()/sync(); the epoch advances so
  /// descendants reload too rather than trusting the mid-rebuild store.
  void rewire(std::shared_ptr<net::Channel> channel, std::string parent_url);

  // --- failure modelling ---

  /// The relay process stops: downstream exchanges fail with TransportError
  /// and sync() does nothing until restart().
  void crash();

  /// The process returns with its in-memory session state gone: downstream
  /// sessions are wiped, upstream sessions must be re-established, and the
  /// epoch advances.
  void restart();

  bool down() const noexcept { return down_; }

  // --- resync::ReSyncEndpoint (downstream-facing master) ---

  resync::ReSyncResponse handle(const ldap::Query& query,
                                const resync::ReSyncControl& control) override;
  void abandon(const std::string& cookie) override;
  void tick(std::uint64_t delta = 1) override;
  /// Crash-hook semantics (net::FaultyChannel::crash_master): equivalent to
  /// crash()+restart() back to back — state wiped, epoch bumped, serving.
  void reset() override;
  const std::string& url() const override { return url_; }

  // --- server::SearchEndpoint (client-facing, referral plumbing reuse) ---

  server::SearchResult process_search(const ldap::Query& query) override;

  // --- introspection ---

  const std::string& parent_url() const noexcept { return parent_url_; }

  /// Non-empty when the parent refused a filter with a referral; the
  /// runtime consumes it via rewire() + clear_referral().
  const std::string& referred_to() const noexcept { return referred_to_; }
  void clear_referral() { referred_to_.clear(); }

  /// Consecutive sync() rounds in which every attempted upstream exchange
  /// failed at the transport level — the re-parenting trigger.
  std::uint64_t failed_streak() const noexcept { return failed_streak_; }

  std::uint64_t epoch() const noexcept { return epoch_; }

  /// True when the upstream link was wired over the framed wire codec.
  bool framed_upstream() const noexcept { return config_.framed; }

  /// Root-master logical time this relay's content reflects (the minimum
  /// across its sessions; the staleness lag is root-now minus this).
  std::uint64_t root_time() const noexcept { return root_time_; }

  std::uint64_t admission_rejects() const noexcept { return admission_rejects_; }
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  std::uint64_t reparents() const noexcept { return reparents_; }

  /// Per-filter upstream session health (degradation, retries, recoveries).
  net::HealthStats upstream_health() const;

  bool any_degraded() const;
  std::size_t filter_count() const noexcept { return filters_.size(); }

  replica::FilterReplica& filter_replica() noexcept { return replica_; }
  const replica::FilterReplica& filter_replica() const noexcept {
    return replica_;
  }
  server::DirectoryServer& mirror() noexcept { return mirror_; }
  const server::DirectoryServer& mirror() const noexcept { return mirror_; }
  resync::ReSyncMaster& downstream_master() noexcept { return downstream_; }
  const resync::ReSyncMaster& downstream_master() const noexcept {
    return downstream_;
  }

 private:
  struct UpstreamFilter {
    ldap::Query query;
    std::size_t replica_id = 0;  // admission slot in replica_
    std::string cookie;          // empty = no session yet
    bool degraded = false;
    std::uint64_t last_origin = 0;  // root time of the last response
    std::uint64_t last_synced = 0;  // local clock at the last success
    std::uint64_t retries = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t failed_syncs = 0;
    std::uint64_t busy_rejections = 0;  // refetches bounced at parent capacity
    std::uint64_t degraded_polls = 0;   // eq.(3) enumerations from the parent
    std::uint64_t paged_polls = 0;      // continuation pages fetched
    std::uint64_t full_reloads = 0;     // full-content loads (incl. install)
    std::uint64_t reconciles = 0;       // sessions healed by a digest walk
    std::uint64_t reconcile_entries_shipped = 0;  // diff PDUs those walks cost
    /// DNs the parent currently lists for this filter (norm key -> DN),
    /// maintained from Add/Delete PDUs and full/complete enumerations.
    /// Claim checks consult these sets, never the mirror copy: after a
    /// shared entry is deleted upstream, the stale mirror attributes still
    /// match every overlapping filter, so re-matching would let each
    /// filter's Delete defer to the other and the ghost entry never die.
    std::map<std::string, ldap::Dn> members;
  };

  /// Splits "e<epoch>!<inner>"; throws StaleCookieError on a non-current
  /// epoch, ProtocolError on malformed prefixes.
  std::string unwrap_cookie(const std::string& cookie) const;
  std::string wrap_cookie(const std::string& inner) const;

  /// True when `query` is contained in a replicated query (Props. 1-3).
  bool admit(const ldap::Query& query);

  resync::ReSyncResponse request(UpstreamFilter& filter,
                                 const resync::ReSyncControl& control);

  /// Fetches the remaining pages of a paged response, appending their PDUs
  /// onto `first` and advancing the session cookie page by page. Collect-
  /// then-apply: a transport failure mid-drain propagates before anything
  /// touched the mirror, the filter degrades, and the next sync() refetches
  /// a fresh full-reload session — so a torn pagination never leaves a
  /// partial eq.(3) drop in the mirror.
  resync::ReSyncResponse collect_pages(UpstreamFilter& filter,
                                       resync::ReSyncResponse first);

  /// Add-or-replace in the mirror, journaled. Creates attribute-less glue
  /// ancestors up to the suffix when the entry's parent chain is not
  /// replicated here (glue never matches a filter, so it never ships
  /// downstream). Equal re-deliveries are skipped without a journal record.
  void upsert(const ldap::EntryPtr& entry);

  /// Removes `dn` from the mirror unless another filter's upstream
  /// membership set still claims the entry. A non-leaf (its children are
  /// replicated content) is downgraded to glue instead of removed,
  /// preserving tree shape.
  void erase_unless_claimed(const ldap::Dn& dn, std::size_t source);

  /// Journals glue entries for every missing ancestor of `dn` above the
  /// suffix, top-down.
  void ensure_parents(const ldap::Dn& dn);

  /// Applies one poll/initial response for filters_[index] to the mirror.
  void apply_response(std::size_t index, const resync::ReSyncResponse& response);

  /// Opens a fresh session for filters_[index]. When the mirror already
  /// holds content for the filter (and Config::reconcile is on), a digest
  /// walk is offered first so only the divergent entries ship; otherwise —
  /// or when the parent does not speak reconciliation or the walk falls
  /// back — the enumerated full content is diffed into the mirror.
  /// `recovery` marks a session re-established after established state was
  /// lost (stale cookie, degradation heal): it counts as a recovery and, on
  /// the full-reload path, bumps the epoch (a reconciled heal journals its
  /// diff as ordinary changes, so descendants ride through). Returns false
  /// when the link stays down or the parent referred elsewhere
  /// (referred_to() set).
  bool refetch(std::size_t index, bool recovery);

  /// Completes a reconciliation walk whose round-1 answer is `round1`:
  /// in-sync short-circuit or fingerprint upload + diff application.
  /// `snapshot` is the mirror's view of the filter the offer was built
  /// from. Throws StaleCookieError when the walk expired between rounds.
  bool reconcile_refetch(
      std::size_t index, resync::ReSyncResponse round1,
      const std::map<std::string, ldap::EntryPtr>& snapshot, bool recovery);

  /// Applies a full-content initial response: collects pages, diffs the
  /// enumeration into the mirror, swaps the membership set and (for
  /// recoveries) bumps the epoch.
  bool apply_full(std::size_t index, resync::ReSyncResponse response,
                  bool recovery);

  /// Content rebuilt wholesale: invalidate every descendant cookie.
  void bump_epoch();

  Config config_;
  std::string url_;
  replica::FilterReplica replica_;   // admission/meta set (unmaterialized)
  server::DirectoryServer mirror_;   // replicated content, journaled
  resync::ReSyncMaster downstream_;  // serves descendant sessions
  std::shared_ptr<net::Channel> channel_;
  std::string parent_url_;
  std::vector<UpstreamFilter> filters_;
  std::string referred_to_;
  std::uint64_t epoch_ = 0;
  std::uint64_t root_time_ = 0;
  std::uint64_t failed_streak_ = 0;
  std::uint64_t admission_rejects_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t reparents_ = 0;
  bool down_ = false;
  bool epoch_bumped_this_round_ = false;
};

}  // namespace fbdr::topology
