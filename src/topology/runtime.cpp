#include "topology/runtime.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fbdr::topology {

TopologyRuntime::TopologyRuntime(std::shared_ptr<server::DirectoryServer> root,
                                 Options options)
    : root_(std::move(root)),
      options_(std::move(options)),
      root_endpoint_(*root_) {}

TopologyRuntime::Node& TopologyRuntime::find_node(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name == name) return *node;
  }
  throw std::invalid_argument("unknown topology node '" + name + "'");
}

const TopologyRuntime::Node& TopologyRuntime::find_node(
    const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node->name == name) return *node;
  }
  throw std::invalid_argument("unknown topology node '" + name + "'");
}

bool TopologyRuntime::has_node(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node->name == name) return true;
  }
  return false;
}

RelayNode& TopologyRuntime::node(const std::string& name) {
  return *find_node(name).relay;
}

const RelayNode& TopologyRuntime::node(const std::string& name) const {
  return *find_node(name).relay;
}

std::vector<std::string> TopologyRuntime::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) names.push_back(node->name);
  return names;
}

const std::string& TopologyRuntime::parent_of(const std::string& name) const {
  return find_node(name).parent;
}

std::size_t TopologyRuntime::depth_of(const Node& node) const {
  std::size_t depth = 1;
  const Node* current = &node;
  while (!current->parent.empty()) {
    current = &find_node(current->parent);
    ++depth;
  }
  return depth;
}

std::size_t TopologyRuntime::depth_of(const std::string& name) const {
  return depth_of(find_node(name));
}

resync::ReSyncEndpoint* TopologyRuntime::endpoint_at(const std::string& url) {
  if (url == root_->url()) return &root_endpoint_;
  for (auto& node : nodes_) {
    if (node->relay->url() == url) return node->relay.get();
  }
  return nullptr;
}

std::shared_ptr<net::Channel> TopologyRuntime::make_channel(
    resync::ReSyncEndpoint& endpoint, const std::string& node_name,
    bool framed) {
  ++link_counter_;
  fault_channels_.erase(node_name);
  fault_pipes_.erase(node_name);
  framed_links_.erase(node_name);
  if (framed) {
    std::shared_ptr<net::FramedChannel> channel;
    if (options_.faults.has_value()) {
      net::FaultConfig config = *options_.faults;
      // Distinct deterministic stream per link, as on faulty direct links.
      config.seed = config.seed + 0x9e3779b9ull * link_counter_;
      auto pipe = std::make_shared<net::FaultyPipe>(endpoint, config);
      fault_pipes_[node_name] = pipe.get();
      channel = std::make_shared<net::FramedChannel>(std::move(pipe));
    } else {
      channel = std::make_shared<net::FramedChannel>(endpoint);
    }
    framed_links_[node_name] = channel.get();
    return channel;
  }
  if (!options_.faults.has_value()) {
    return std::make_shared<net::DirectChannel>(endpoint);
  }
  net::FaultConfig config = *options_.faults;
  // Distinct deterministic stream per link; re-wired links get fresh ones.
  config.seed = config.seed + 0x9e3779b9ull * link_counter_;
  auto channel = std::make_shared<net::FaultyChannel>(endpoint, config);
  fault_channels_[node_name] = channel.get();
  return channel;
}

RelayNode& TopologyRuntime::add_node(const std::string& name,
                                     const std::string& parent,
                                     const std::vector<ldap::Query>& filters,
                                     std::optional<bool> framed) {
  if (has_node(name)) {
    throw std::invalid_argument("duplicate topology node '" + name + "'");
  }
  const bool framed_link = framed.value_or(options_.framed);
  resync::ReSyncEndpoint* upstream = &root_endpoint_;
  std::string parent_url = root_->url();
  if (!parent.empty()) {
    Node& parent_node = find_node(parent);  // throws for unknown parents
    upstream = parent_node.relay.get();
    parent_url = parent_node.relay->url();
  }

  RelayNode::Config config;
  config.name = name;
  if (!root_->contexts().empty()) {
    config.suffix = root_->contexts().front().suffix;
  }
  config.retry = options_.retry;
  config.session_time_limit = options_.session_time_limit;
  config.downstream_limits = options_.relay_limits;
  config.framed = framed_link;

  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  node->framed = framed_link;
  node->relay = std::make_unique<RelayNode>(std::move(config), root_->schema());
  for (const ldap::Query& query : filters) node->relay->add_filter(query);
  node->relay->connect(make_channel(*upstream, name, framed_link), parent_url);
  nodes_.push_back(std::move(node));
  return *nodes_.back()->relay;
}

void TopologyRuntime::rewire_to(Node& node, const std::string& url) {
  resync::ReSyncEndpoint* endpoint = endpoint_at(url);
  if (endpoint == nullptr || endpoint == node.relay.get()) {
    endpoint = &root_endpoint_;  // unknown or self referral: go to the top
  }
  std::string new_parent;  // "" = root
  if (endpoint != &root_endpoint_) {
    for (auto& candidate : nodes_) {
      if (candidate->relay.get() == endpoint) {
        new_parent = candidate->name;
        break;
      }
    }
  }
  node.relay->rewire(make_channel(*endpoint, node.name, node.framed),
                     new_parent.empty() ? root_->url()
                                        : find_node(new_parent).relay->url());
  node.parent = new_parent;
}

bool TopologyRuntime::install() {
  bool all = true;
  // Insertion order is parents-before-children, so every node's upstream
  // already holds content when its sessions open.
  for (auto& node : nodes_) {
    bool installed = false;
    // A parent that does not admit the node's filters refers it upward;
    // chase ancestor by ancestor. The root admits everything, so the chase
    // terminates within the tree height.
    for (std::size_t hop = 0; hop <= nodes_.size(); ++hop) {
      if (node->relay->install_all()) {
        installed = true;
        break;
      }
      if (node->relay->referred_to().empty()) break;  // transport failure
      rewire_to(*node, node->relay->referred_to());
    }
    all = all && installed;
  }
  return all;
}

std::vector<const TopologyRuntime::Node*> TopologyRuntime::by_depth_desc()
    const {
  std::vector<const Node*> ordered;
  ordered.reserve(nodes_.size());
  for (const auto& node : nodes_) ordered.push_back(node.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [this](const Node* a, const Node* b) {
                     return depth_of(*a) > depth_of(*b);
                   });
  return ordered;
}

void TopologyRuntime::react(Node& node) {
  if (!node.relay->referred_to().empty()) {
    rewire_to(node, node.relay->referred_to());
    return;
  }
  if (options_.reparent_after == 0) return;
  if (node.relay->failed_streak() < options_.reparent_after) return;
  // Sustained parent failure: adopt the node (and implicitly the whole
  // subtree below it, which keeps syncing from it unchanged) to its
  // grandparent. Children of the root re-wire to the root itself, which
  // re-opens the link fresh.
  std::string target = root_->url();
  if (!node.parent.empty()) {
    const std::string& grandparent = find_node(node.parent).parent;
    if (!grandparent.empty()) target = find_node(grandparent).relay->url();
  }
  rewire_to(node, target);
}

void TopologyRuntime::tick() {
  // Deepest-first: each node pulls the content its parent holds from the
  // previous round before the parent refreshes, so content is exactly one
  // tick staler per hop. The root pumps and advances last.
  for (const Node* ordered : by_depth_desc()) {
    Node& node = find_node(ordered->name);
    if (node.relay->down()) continue;
    node.relay->sync();
    react(node);
  }
  root_endpoint_.pump();
  root_endpoint_.tick(1);
}

void TopologyRuntime::run(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) tick();
}

void TopologyRuntime::crash_node(const std::string& name) {
  find_node(name).relay->crash();
}

void TopologyRuntime::restart_node(const std::string& name) {
  find_node(name).relay->restart();
}

net::FaultyChannel* TopologyRuntime::fault_channel(const std::string& name) {
  const auto it = fault_channels_.find(name);
  return it == fault_channels_.end() ? nullptr : it->second;
}

net::FaultyPipe* TopologyRuntime::fault_pipe(const std::string& name) {
  const auto it = fault_pipes_.find(name);
  return it == fault_pipes_.end() ? nullptr : it->second;
}

net::FramedChannel* TopologyRuntime::framed_link(const std::string& name) {
  const auto it = framed_links_.find(name);
  return it == framed_links_.end() ? nullptr : it->second;
}

std::vector<NodeHealth> TopologyRuntime::health() const {
  std::vector<const Node*> ordered;
  ordered.reserve(nodes_.size());
  for (const auto& node : nodes_) ordered.push_back(node.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [this](const Node* a, const Node* b) {
                     return depth_of(*a) < depth_of(*b);
                   });
  const std::uint64_t now = root_endpoint_.now();
  std::vector<NodeHealth> report;
  report.reserve(ordered.size());
  for (const Node* node : ordered) {
    NodeHealth health;
    health.name = node->name;
    health.parent = node->parent;
    health.depth = depth_of(*node);
    const std::uint64_t seen = node->relay->root_time();
    health.lag_ticks = now > seen ? now - seen : 0;
    health.down = node->relay->down();
    health.degraded = node->relay->any_degraded();
    health.epoch = node->relay->epoch();
    health.downstream_sessions = node->relay->downstream_master().session_count();
    health.admission_rejects = node->relay->admission_rejects();
    health.recoveries = node->relay->recoveries();
    health.reparents = node->relay->reparents();
    health.failed_streak = node->relay->failed_streak();
    const resync::ReSyncMaster& downstream = node->relay->downstream_master();
    health.degraded_sessions = downstream.degraded_sessions();
    health.busy_rejections = downstream.governor_stats().sessions_rejected_busy;
    health.evicted_sessions = downstream.governor_stats().sessions_evicted;
    health.history_units = downstream.history_units();
    health.replay_bytes = downstream.replay_cache_bytes();
    const net::HealthStats upstream = node->relay->upstream_health();
    health.upstream_busy = upstream.total_busy_rejections();
    health.full_reloads = upstream.total_full_reloads();
    health.reconciles = upstream.total_reconciles();
    health.reconcile_entries_shipped =
        upstream.total_reconcile_entries_shipped();
    report.push_back(std::move(health));
  }
  return report;
}

server::ServerMap TopologyRuntime::server_map() const {
  server::ServerMap map;
  map.add(root_);
  for (const auto& node : nodes_) {
    // Non-owning view: the runtime outlives the map it hands out.
    map.add(std::shared_ptr<server::SearchEndpoint>(node->relay.get(),
                                                    [](server::SearchEndpoint*) {}));
  }
  return map;
}

}  // namespace fbdr::topology
