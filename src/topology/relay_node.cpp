#include "topology/relay_node.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <utility>

#include "ldap/error.h"
#include "sync/content_digest.h"

namespace fbdr::topology {

using ldap::EntryPtr;
using ldap::Query;

RelayNode::RelayNode(Config config, const ldap::Schema& schema,
                     std::shared_ptr<ldap::TemplateRegistry> registry)
    : config_(std::move(config)),
      url_("ldap://" + config_.name),
      replica_(schema, std::move(registry)),
      mirror_(url_ + "/mirror", schema),
      downstream_(mirror_) {
  mirror_.add_context({config_.suffix, {}});
  downstream_.set_session_time_limit(config_.session_time_limit);
  downstream_.set_resource_limits(config_.downstream_limits);
  downstream_.set_pump_shards(config_.pump_shards);
  downstream_.set_pump_threads(config_.pump_threads);
}

void RelayNode::connect(std::shared_ptr<net::Channel> channel,
                        std::string parent_url) {
  channel_ = std::move(channel);
  parent_url_ = std::move(parent_url);
}

void RelayNode::add_filter(const Query& query) {
  const std::string key = query.key();
  for (const UpstreamFilter& filter : filters_) {
    if (filter.query.key() == key) return;
  }
  UpstreamFilter filter;
  filter.query = query;
  filter.replica_id = replica_.add_query(query);
  filters_.push_back(std::move(filter));
}

resync::ReSyncResponse RelayNode::request(UpstreamFilter& filter,
                                          const resync::ReSyncControl& control) {
  return net::exchange_with_retry(*channel_, filter.query, control,
                                  config_.retry, &filter.retries);
}

resync::ReSyncResponse RelayNode::collect_pages(UpstreamFilter& filter,
                                                resync::ReSyncResponse first) {
  while (first.more) {
    resync::ReSyncResponse page =
        request(filter, {resync::Mode::Poll, filter.cookie});
    filter.cookie = page.cookie;
    ++filter.paged_polls;
    first.more = page.more;
    first.full_reload = first.full_reload || page.full_reload;
    first.complete_enumeration =
        first.complete_enumeration || page.complete_enumeration;
    first.origin_time = std::max(first.origin_time, page.origin_time);
    first.pdus.insert(first.pdus.end(),
                      std::make_move_iterator(page.pdus.begin()),
                      std::make_move_iterator(page.pdus.end()));
  }
  return first;
}

bool RelayNode::install_all() {
  if (down_ || channel_ == nullptr) return false;
  bool all = true;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    UpstreamFilter& filter = filters_[i];
    if (!filter.cookie.empty()) continue;
    if (refetch(i, /*recovery=*/false)) {
      filter.degraded = false;
    } else {
      all = false;
      if (!referred_to_.empty()) break;  // runtime must re-target first
      ++filter.failed_syncs;
      filter.degraded = true;  // heals through the sync() recovery path
    }
  }
  return all && referred_to_.empty();
}

void RelayNode::sync() {
  if (down_) return;
  epoch_bumped_this_round_ = false;
  bool attempted = false;
  bool transport_ok = false;
  for (std::size_t i = 0; i < filters_.size() && channel_ != nullptr; ++i) {
    if (!referred_to_.empty()) break;  // stop pumping a parent that refused us
    UpstreamFilter& filter = filters_[i];
    attempted = true;
    if (filter.cookie.empty() || filter.degraded) {
      // Session never established (post-restart/rewire) or down past the
      // retry budget: re-establish with a full reload.
      if (refetch(i, /*recovery=*/filter.degraded)) {
        transport_ok = true;
        filter.degraded = false;
      } else if (!referred_to_.empty()) {
        transport_ok = true;  // the parent answered — with a bounce
      } else {
        ++filter.failed_syncs;
        filter.degraded = true;
      }
      continue;
    }
    try {
      resync::ReSyncResponse response =
          request(filter, {resync::Mode::Poll, filter.cookie});
      filter.cookie = response.cookie;
      response = collect_pages(filter, std::move(response));
      if (response.complete_enumeration) ++filter.degraded_polls;
      // max(): a replayed poll (duplicate retried through a FaultyChannel)
      // may carry an older stamp; root time must never roll backwards.
      filter.last_origin = std::max(filter.last_origin, response.origin_time);
      filter.last_synced = downstream_.now();
      apply_response(i, response);
      transport_ok = true;
    } catch (const ldap::StaleCookieError&) {
      // The parent expired or lost the session (restart, epoch bump):
      // recover with a full reload — and cascade the bump to descendants.
      if (refetch(i, /*recovery=*/true)) {
        transport_ok = true;
      } else if (!referred_to_.empty()) {
        transport_ok = true;
      } else {
        ++filter.failed_syncs;
        filter.degraded = true;
      }
    } catch (const net::TransportError&) {
      ++filter.failed_syncs;
      filter.degraded = true;
    }
  }
  if (attempted) failed_streak_ = transport_ok ? 0 : failed_streak_ + 1;

  // The relay's content is only as fresh as its stalest session.
  if (!filters_.empty()) {
    std::uint64_t oldest = filters_.front().last_origin;
    for (const UpstreamFilter& filter : filters_) {
      oldest = std::min(oldest, filter.last_origin);
    }
    root_time_ = oldest;
  }

  downstream_.pump();
  downstream_.tick(1);
}

bool RelayNode::refetch(std::size_t index, bool recovery) {
  UpstreamFilter& filter = filters_[index];
  try {
    if (config_.reconcile && !filter.members.empty()) {
      // The mirror already holds this filter's view (restart, rewire or a
      // degradation heal — the membership set survives all of them): offer
      // its digests instead of accepting a full content enumeration.
      std::map<std::string, ldap::EntryPtr> snapshot;
      auto offer = std::make_shared<resync::ReconcileRequest>();
      offer->round = 1;
      sync::ContentDigest digest;
      for (const auto& [key, dn] : filter.members) {
        const EntryPtr entry = mirror_.dit().find(dn);
        if (!entry) continue;
        snapshot.emplace(key, entry);
        digest.upsert(key, *entry);
      }
      offer->root_digest = digest.root();
      offer->entry_count = digest.entry_count();
      offer->buckets = digest.bucket_digests();
      resync::ReSyncControl control{resync::Mode::Poll, ""};
      control.reconcile = std::move(offer);
      resync::ReSyncResponse response = request(filter, control);
      if (response.referred()) {
        referred_to_ = response.referral_url;
        return false;
      }
      if (response.busy) {
        ++filter.busy_rejections;
        return false;
      }
      filter.cookie = response.cookie;
      if (response.reconcile && !response.reconcile->fallback) {
        try {
          return reconcile_refetch(index, std::move(response), snapshot,
                                   recovery);
        } catch (const ldap::StaleCookieError&) {
          // The walk expired between rounds: plain reload below.
          filter.cookie.clear();
        }
      } else {
        // Walk fallback (diverged too far / cap) or a parent that does not
        // speak reconciliation: the response body is the full content.
        return apply_full(index, std::move(response), recovery);
      }
    }
    resync::ReSyncResponse response = request(filter, {resync::Mode::Poll, ""});
    if (response.referred()) {
      referred_to_ = response.referral_url;
      return false;
    }
    if (response.busy) {
      // The parent is at session capacity: stay degraded (serving the
      // possibly-stale mirror) and try again on a later sync round, once
      // another descendant's session has drained or been evicted.
      ++filter.busy_rejections;
      return false;
    }
    return apply_full(index, std::move(response), recovery);
  } catch (const net::TransportError&) {
    return false;
  }
}

bool RelayNode::apply_full(std::size_t index, resync::ReSyncResponse response,
                           bool recovery) {
  UpstreamFilter& filter = filters_[index];
  filter.cookie = response.cookie;
  response = collect_pages(filter, std::move(response));
  filter.last_origin = std::max(filter.last_origin, response.origin_time);
  filter.last_synced = downstream_.now();
  ++filter.full_reloads;
  // Diff the enumerated content into the mirror: upsert everything
  // shipped, then drop what this filter previously claimed but the parent
  // no longer lists. Diffing (rather than clearing and reloading) keeps
  // the journal minimal, so descendants receive only real changes.
  std::map<std::string, ldap::Dn> shipped;
  for (const resync::EntryPdu& pdu : response.pdus) {
    if (!pdu.entry) continue;
    shipped.emplace(pdu.dn.norm_key(), pdu.dn);
    upsert(pdu.entry);
  }
  const std::map<std::string, ldap::Dn> previous =
      std::exchange(filter.members, std::move(shipped));
  for (const auto& [key, dn] : previous) {
    if (filter.members.find(key) == filter.members.end()) {
      erase_unless_claimed(dn, index);
    }
  }
  if (recovery) {
    ++filter.recoveries;
    ++recoveries_;
    if (!epoch_bumped_this_round_) bump_epoch();
  }
  return true;
}

bool RelayNode::reconcile_refetch(
    std::size_t index, resync::ReSyncResponse round1,
    const std::map<std::string, ldap::EntryPtr>& snapshot, bool recovery) {
  UpstreamFilter& filter = filters_[index];
  if (round1.reconcile->in_sync) {
    // Roots matched: the mirror's view is already exact; nothing shipped.
    filter.last_origin = std::max(filter.last_origin, round1.origin_time);
    filter.last_synced = downstream_.now();
    ++filter.reconciles;
    if (recovery) {
      ++filter.recoveries;
      ++recoveries_;
    }
    return true;
  }
  // Round 2: upload fingerprints for the divergent buckets; the answer is
  // the exact diff, applied through the ordinary delta path so the mirror
  // journals it and descendant sessions ride through (no epoch bump —
  // that is the cascading saving).
  auto upload = std::make_shared<resync::ReconcileRequest>();
  upload->round = 2;
  std::set<std::uint32_t> wanted(round1.reconcile->need_buckets.begin(),
                                 round1.reconcile->need_buckets.end());
  for (const auto& [key, entry] : snapshot) {
    if (wanted.count(sync::ContentDigest::bucket_of(key)) == 0) continue;
    upload->fingerprints.push_back(
        {entry->dn(), sync::ContentDigest::hash_entry(*entry)});
  }
  resync::ReSyncControl control{resync::Mode::Poll, filter.cookie};
  control.reconcile = std::move(upload);
  resync::ReSyncResponse diff = request(filter, control);
  filter.cookie = diff.cookie;
  diff = collect_pages(filter, std::move(diff));
  filter.last_origin = std::max(filter.last_origin, diff.origin_time);
  filter.last_synced = downstream_.now();
  filter.reconcile_entries_shipped += diff.pdus.size();
  apply_response(index, diff);
  ++filter.reconciles;
  if (recovery) {
    ++filter.recoveries;
    ++recoveries_;
  }
  return true;
}

void RelayNode::apply_response(std::size_t index,
                               const resync::ReSyncResponse& response) {
  UpstreamFilter& filter = filters_[index];
  std::set<std::string> mentioned;
  for (const resync::EntryPdu& pdu : response.pdus) {
    const std::string key = pdu.dn.norm_key();
    if (response.complete_enumeration) mentioned.insert(key);
    switch (pdu.action) {
      case resync::Action::Add:
      case resync::Action::Modify:
        filter.members.insert_or_assign(key, pdu.dn);
        upsert(pdu.entry);
        break;
      case resync::Action::Delete:
        filter.members.erase(key);
        erase_unless_claimed(pdu.dn, index);
        break;
      case resync::Action::Retain:
        filter.members.insert_or_assign(key, pdu.dn);  // membership confirmed
        break;
    }
  }
  if (response.complete_enumeration) {
    // Equation (3): unmentioned entries are gone from the parent.
    std::vector<std::pair<std::string, ldap::Dn>> stale;
    for (const auto& [key, dn] : filter.members) {
      if (mentioned.find(key) == mentioned.end()) stale.emplace_back(key, dn);
    }
    for (const auto& [key, dn] : stale) {
      filter.members.erase(key);
      erase_unless_claimed(dn, index);
    }
  }
}

void RelayNode::ensure_parents(const ldap::Dn& dn) {
  if (dn.is_root() || dn.norm_key() == config_.suffix.norm_key()) return;
  std::vector<ldap::Dn> missing;
  ldap::Dn cursor = dn.parent();
  while (!cursor.is_root() && !mirror_.dit().contains(cursor)) {
    missing.push_back(cursor);
    if (cursor.norm_key() == config_.suffix.norm_key()) break;
    cursor = cursor.parent();
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    mirror_.add(std::make_shared<ldap::Entry>(*it));
  }
}

void RelayNode::upsert(const EntryPtr& entry) {
  const EntryPtr existing = mirror_.dit().find(entry->dn());
  if (existing) {
    if (*existing == *entry) return;  // re-delivery; keep the journal quiet
    std::vector<server::Modification> mods;
    for (const auto& [attr, values] : entry->attributes()) {
      mods.push_back({server::Modification::Op::Replace, attr, values});
    }
    for (const auto& [attr, values] : existing->attributes()) {
      if (!entry->has_attribute(attr)) {
        mods.push_back({server::Modification::Op::Replace, attr, {}});
      }
    }
    mirror_.modify(entry->dn(), std::move(mods));
    return;
  }
  ensure_parents(entry->dn());
  mirror_.add(entry);
}

void RelayNode::erase_unless_claimed(const ldap::Dn& dn, std::size_t source) {
  const EntryPtr entry = mirror_.dit().find(dn);
  if (!entry) return;  // shared delete already applied via another filter
  // Consult what each session's parent actually lists, never the mirror
  // copy: a truly deleted shared entry keeps matching every overlapping
  // filter through its stale attributes, so re-matching would make each
  // filter's Delete defer to the others forever.
  const std::string key = dn.norm_key();
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (i == source) continue;
    const UpstreamFilter& other = filters_[i];
    if (other.members.find(key) != other.members.end()) {
      return;  // still replicated here under another session
    }
  }
  try {
    mirror_.remove(dn);
  } catch (const ldap::OperationError& error) {
    if (error.code() != ldap::ResultCode::NotAllowedOnNonLeaf) throw;
    // Its children are replicated content: downgrade to attribute-less
    // glue so the tree shape survives. Downstream filters stop matching,
    // so sessions see the entry leave — the semantic delete.
    std::vector<server::Modification> mods;
    for (const std::string& attr : entry->attribute_names()) {
      mods.push_back({server::Modification::Op::Replace, attr, {}});
    }
    if (!mods.empty()) mirror_.modify(dn, std::move(mods));
  }
}

void RelayNode::rewire(std::shared_ptr<net::Channel> channel,
                       std::string parent_url) {
  for (UpstreamFilter& filter : filters_) {
    if (!filter.cookie.empty() && channel_ != nullptr) {
      try {
        channel_->exchange(filter.query,
                           {resync::Mode::SyncEnd, filter.cookie});
      } catch (const net::TransportError&) {
        // Old parent unreachable (likely why we are re-parenting); its
        // orphaned session expires under the admin time limit.
      } catch (const ldap::ProtocolError&) {
      }
    }
    filter.cookie.clear();
    filter.degraded = false;
  }
  channel_ = std::move(channel);
  parent_url_ = std::move(parent_url);
  referred_to_.clear();
  failed_streak_ = 0;
  ++reparents_;
  // Sessions rebuild wholesale at the new parent; descendants must not
  // resume against the mid-rebuild mirror.
  bump_epoch();
}

void RelayNode::crash() { down_ = true; }

void RelayNode::restart() {
  down_ = false;
  bump_epoch();  // downstream session state died with the process
  for (UpstreamFilter& filter : filters_) {
    filter.cookie.clear();  // upstream sessions must be re-established
    filter.degraded = false;
  }
}

void RelayNode::reset() { restart(); }

void RelayNode::bump_epoch() {
  ++epoch_;
  downstream_.reset();
  epoch_bumped_this_round_ = true;
}

std::string RelayNode::wrap_cookie(const std::string& inner) const {
  std::string cookie = "e";
  cookie += std::to_string(epoch_);
  cookie += '!';
  cookie += inner;
  return cookie;
}

std::string RelayNode::unwrap_cookie(const std::string& cookie) const {
  const std::size_t bang = cookie.find('!');
  if (cookie.empty() || cookie.front() != 'e' || bang == std::string::npos) {
    throw ldap::ProtocolError("malformed relay cookie '" + cookie + "'");
  }
  std::uint64_t epoch = 0;
  try {
    epoch = std::stoull(cookie.substr(1, bang - 1));
  } catch (const std::exception&) {
    throw ldap::ProtocolError("malformed relay cookie epoch '" + cookie + "'");
  }
  if (epoch != epoch_) {
    throw ldap::StaleCookieError(
        "relay " + url_ + " rebuilt its content (epoch " +
        std::to_string(epoch_) + ", cookie has " + std::to_string(epoch) + ")");
  }
  return cookie.substr(bang + 1);
}

bool RelayNode::admit(const Query& query) { return replica_.handle(query).hit; }

resync::ReSyncResponse RelayNode::handle(const Query& query,
                                         const resync::ReSyncControl& control) {
  if (down_) throw net::TransportError(url_ + ": relay down");
  if (control.mode == resync::Mode::SyncEnd) {
    if (control.initial()) return {};
    try {
      return downstream_.handle(query,
                                {control.mode, unwrap_cookie(control.cookie)});
    } catch (const ldap::StaleCookieError&) {
      return {};  // ending an already-invalidated session is a no-op
    }
  }
  resync::ReSyncResponse response;
  if (control.initial()) {
    if (!admit(query)) {
      // Not contained in the replicated set: bounce to the parent, the
      // default-referral rule of §2.3 applied to update sessions.
      ++admission_rejects_;
      response.referral_url = parent_url_;
      return response;
    }
    response = downstream_.handle(query, control);
    if (response.busy) {
      // Downstream master at its session cap: pass the busy result through
      // unwrapped (no session was created, so there is no cookie to epoch-
      // stamp); the descendant retries with backoff like any busy client.
      response.origin_time = root_time_;
      return response;
    }
  } else {
    // Copy the control so the reconcile payload (a round-2 fingerprint
    // upload through this relay) survives the cookie unwrap.
    resync::ReSyncControl inner = control;
    inner.cookie = unwrap_cookie(control.cookie);
    response = downstream_.handle(query, inner);
  }
  response.cookie = wrap_cookie(response.cookie);
  response.origin_time = root_time_;
  return response;
}

void RelayNode::abandon(const std::string& cookie) {
  if (down_) return;  // best effort, like the wire operation
  try {
    downstream_.abandon(unwrap_cookie(cookie));
  } catch (const ldap::ProtocolError&) {
    // Stale epoch or malformed: the session it named no longer exists.
  }
}

void RelayNode::tick(std::uint64_t delta) { downstream_.tick(delta); }

server::SearchResult RelayNode::process_search(const Query& query) {
  if (down_) throw net::TransportError(url_ + ": relay down");
  server::SearchResult result;
  if (admit(query)) {
    // Containment guarantees the mirror holds the complete answer (§3).
    result.base_resolved = true;
    for (const EntryPtr& entry : mirror_.evaluate(query)) {
      result.entries.push_back(server::project(entry, query.attrs));
    }
  } else {
    result.referrals.push_back({parent_url_, query.base, query.scope});
  }
  return result;
}

net::HealthStats RelayNode::upstream_health() const {
  net::HealthStats stats;
  const std::uint64_t now = downstream_.now();
  for (const UpstreamFilter& filter : filters_) {
    net::FilterHealth health;
    health.degraded = filter.degraded;
    health.ticks_behind =
        now > filter.last_synced ? now - filter.last_synced : 0;
    health.retries = filter.retries;
    health.recoveries = filter.recoveries;
    health.failed_syncs = filter.failed_syncs;
    health.busy_rejections = filter.busy_rejections;
    health.degraded_polls = filter.degraded_polls;
    health.paged_polls = filter.paged_polls;
    health.full_reloads = filter.full_reloads;
    health.reconciles = filter.reconciles;
    health.reconcile_entries_shipped = filter.reconcile_entries_shipped;
    stats.filters.emplace(filter.query.key(), health);
  }
  return stats;
}

bool RelayNode::any_degraded() const {
  for (const UpstreamFilter& filter : filters_) {
    if (filter.degraded) return true;
  }
  return false;
}

}  // namespace fbdr::topology
