#include "netio/chaos_proxy.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace fbdr::netio {

namespace {

using Clock = std::chrono::steady_clock;

/// RST instead of FIN: with SO_LINGER {1, 0}, close() discards the send
/// queue and sends a reset — the kernel-level spelling of FaultConfig's
/// `reset`.
void close_with_rst(int fd) {
  linger hard{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);
}

/// Per-(connection, direction) RNG stream: the fault draws one connection
/// experiences are a function of (seed, connection index, direction, chunk
/// index) only, independent of how other connections interleave.
std::mt19937_64 leg_rng(std::uint64_t seed, std::uint64_t link_id,
                        bool upward) {
  const std::uint64_t golden = 0x9E3779B97F4A7C15ull;
  return std::mt19937_64(seed ^ (link_id * golden) ^ (upward ? 0 : ~0ull));
}

}  // namespace

ChaosProxy::ChaosProxy(Options options) : options_(std::move(options)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

ChaosProxy::~ChaosProxy() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SocketAddr ChaosProxy::listen() {
  SocketAddr bound;
  std::string error;
  listen_fd_ = open_listener(options_.listen, 64, &bound, &error);
  if (listen_fd_ < 0) {
    throw std::runtime_error("chaos proxy listen " +
                             options_.listen.to_string() + ": " + error);
  }
  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  return bound;
}

void ChaosProxy::start() {
  stop_requested_.store(false);
  thread_ = std::thread([this] {
    // A short timeout while delayed/throttled bytes await release keeps the
    // injected latency close to the configured one.
    while (poll_once(has_pending_work() ? 2 : 50)) {
    }
    for (auto& link : links_) close_link(*link, /*rst=*/false);
    links_.clear();
  });
}

void ChaosProxy::stop() {
  stop_requested_.store(true);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
}

void ChaosProxy::set_faults(const LinkFaults& up, const LinkFaults& down) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  up_faults_ = up;
  down_faults_ = down;
}

void ChaosProxy::apply(const net::FaultConfig& config,
                       std::uint64_t ms_per_tick) {
  LinkFaults up, down;
  up.drop = config.drop_request;
  down.drop = config.drop_response;
  up.reset = down.reset = config.reset;
  up.corrupt = down.corrupt = config.corrupt;
  up.truncate = down.truncate = config.truncate;
  if (config.delay > 0.0 && ms_per_tick > 0) {
    up.delay_ms = down.delay_ms = config.max_delay_ticks * ms_per_tick;
  }
  set_faults(up, down);
  set_partition(config.outage >= 1.0);
}

void ChaosProxy::set_partition(bool on) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  partition_ = on;
}

bool ChaosProxy::partitioned() const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  return partition_;
}

void ChaosProxy::drop_connections() {
  drop_requested_.store(true);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

ChaosProxy::Counters ChaosProxy::counters() const {
  Counters c;
  c.connections = connections_.load();
  c.refused_connects = refused_connects_.load();
  c.failed_upstream = failed_upstream_.load();
  c.drops = drops_.load();
  c.resets = resets_.load();
  c.corrupted = corrupted_.load();
  c.truncated = truncated_.load();
  c.blackholed = blackholed_.load();
  c.delayed = delayed_.load();
  c.chunks = chunks_.load();
  c.bytes_up = bytes_up_.load();
  c.bytes_down = bytes_down_.load();
  return c;
}

std::size_t ChaosProxy::open_links() const { return open_links_.load(); }

bool ChaosProxy::chance(std::mt19937_64& rng, double probability) {
  if (probability <= 0.0) return false;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < probability;
}

LinkFaults ChaosProxy::faults_for(bool upward) const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  return upward ? up_faults_ : down_faults_;
}

bool ChaosProxy::has_pending_work() const {
  for (const auto& link : links_) {
    if (!link->up.held.empty() || !link->down.held.empty()) return true;
  }
  return false;
}

bool ChaosProxy::poll_once(int timeout_ms) {
  if (stop_requested_.load()) return false;

  if (drop_requested_.exchange(false)) {
    for (auto& link : links_) {
      if (link->up.from >= 0) {
        resets_.fetch_add(1);
        close_link(*link, /*rst=*/true);
      }
    }
  }

  epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) {
      throw std::runtime_error(std::string("chaos proxy epoll_wait: ") +
                               std::strerror(errno));
    }
    n = 0;
  }

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == wake_fd_) {
      std::uint64_t drain;
      while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    const auto it = by_fd_.find(fd);
    if (it == by_fd_.end()) continue;  // closed earlier in this batch
    Link& link = *it->second;
    const bool upward = fd == link.up.from;
    if (mask & (EPOLLERR | EPOLLHUP)) {
      close_link(link, /*rst=*/false);
      continue;
    }
    // Writability of `fd` drains the leg that queues toward it.
    if (mask & EPOLLOUT) pump_leg(link, upward ? link.down : link.up);
    if (by_fd_.count(fd) == 0) continue;  // the flush killed the link
    if (mask & EPOLLIN) read_ready(link, upward ? link.up : link.down, upward);
  }

  // Release delayed/throttled bytes, flush queues, reap dead links.
  for (std::size_t i = 0; i < links_.size();) {
    Link& link = *links_[i];
    if (link.up.from >= 0) {
      if (pump_leg(link, link.up)) pump_leg(link, link.down);
    }
    if (link.up.from < 0) {
      links_.erase(links_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  return !stop_requested_.load();
}

void ChaosProxy::accept_ready() {
  for (;;) {
    const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) return;

    if (partitioned()) {
      // During a full partition the far side is unreachable: the fresh
      // connection dies immediately and the client maps it onto
      // TransportError + retry.
      refused_connects_.fetch_add(1);
      close_with_rst(client);
      continue;
    }

    std::string error;
    const int upstream =
        open_client(options_.upstream, options_.connect_timeout_ms, &error);
    if (upstream < 0) {
      failed_upstream_.fetch_add(1);
      close_with_rst(client);
      continue;
    }
    set_nonblocking(upstream);

    auto link = std::make_unique<Link>();
    link->id = next_link_id_++;
    link->up.from = client;
    link->up.to = upstream;
    link->up.rng = leg_rng(options_.seed, link->id, /*upward=*/true);
    link->down.from = upstream;
    link->down.to = client;
    link->down.rng = leg_rng(options_.seed, link->id, /*upward=*/false);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = client;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
    ev.data.fd = upstream;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, upstream, &ev);

    by_fd_[client] = link.get();
    by_fd_[upstream] = link.get();
    links_.push_back(std::move(link));
    connections_.fetch_add(1);
    open_links_.fetch_add(1);
  }
}

void ChaosProxy::read_ready(Link& link, Leg& leg, bool upward) {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(leg.from, chunk, sizeof(chunk), 0);
    if (n == 0) {
      // EOF: the traffic here is strictly request/response, so the simple
      // symmetric close is faithful enough.
      close_link(link, /*rst=*/false);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_link(link, /*rst=*/false);
      return;
    }
    chunks_.fetch_add(1);

    const LinkFaults faults = faults_for(upward);
    if (partitioned() || chance(leg.rng, faults.blackhole)) {
      blackholed_.fetch_add(1);
      continue;  // swallowed; the connection stays up, half-open
    }
    if (chance(leg.rng, faults.drop)) {
      drops_.fetch_add(1);
      close_link(link, /*rst=*/false);
      return;
    }
    if (chance(leg.rng, faults.reset)) {
      resets_.fetch_add(1);
      close_link(link, /*rst=*/true);
      return;
    }

    std::vector<std::uint8_t> bytes(chunk, chunk + n);
    bool reset_after = false;
    if (chance(leg.rng, faults.truncate)) {
      // Cut the chunk short — anywhere past the first frame header this
      // lands mid-frame — and reset: the receiver sees a torn stream.
      const std::size_t keep = std::uniform_int_distribution<std::size_t>(
          0, bytes.size() - 1)(leg.rng);
      bytes.resize(keep);
      truncated_.fetch_add(1);
      reset_after = true;
    } else if (chance(leg.rng, faults.corrupt)) {
      const std::size_t bit = std::uniform_int_distribution<std::size_t>(
          0, bytes.size() * 8 - 1)(leg.rng);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      corrupted_.fetch_add(1);
    }

    if (!bytes.empty()) {
      (upward ? bytes_up_ : bytes_down_).fetch_add(bytes.size());
      if (faults.delay_ms > 0 || faults.throttle_bytes > 0) {
        delayed_.fetch_add(1);
      }
      HeldChunk held;
      held.release = Clock::now() + std::chrono::milliseconds(faults.delay_ms);
      held.bytes = std::move(bytes);
      leg.held.push_back(std::move(held));
      if (!pump_leg(link, leg)) return;
    }
    if (reset_after) {
      resets_.fetch_add(1);
      close_link(link, /*rst=*/true);
      return;
    }
  }
}

bool ChaosProxy::pump_leg(Link& link, Leg& leg) {
  if (leg.from < 0) return false;
  const LinkFaults faults = faults_for(leg.from == link.up.from);
  const auto now = Clock::now();
  std::size_t budget =
      faults.throttle_bytes > 0 ? faults.throttle_bytes : SIZE_MAX;

  while (!leg.held.empty() && leg.held.front().release <= now && budget > 0) {
    HeldChunk& front = leg.held.front();
    const std::size_t take = std::min(budget, front.bytes.size());
    leg.out.insert(leg.out.end(), front.bytes.begin(),
                   front.bytes.begin() + static_cast<std::ptrdiff_t>(take));
    if (take == front.bytes.size()) {
      leg.held.pop_front();
    } else {
      front.bytes.erase(
          front.bytes.begin(),
          front.bytes.begin() + static_cast<std::ptrdiff_t>(take));
    }
    if (budget != SIZE_MAX) budget -= take;
  }

  while (leg.out_offset < leg.out.size()) {
    const ssize_t n = ::send(leg.to, leg.out.data() + leg.out_offset,
                             leg.out.size() - leg.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_link(link, /*rst=*/false);
      return false;
    }
    leg.out_offset += static_cast<std::size_t>(n);
  }
  if (leg.out_offset == leg.out.size()) {
    leg.out.clear();
    leg.out_offset = 0;
  }
  update_interest(leg);
  return true;
}

void ChaosProxy::update_interest(Leg& leg) {
  const bool want_write = leg.out_offset < leg.out.size();
  if (want_write == leg.want_write) return;
  leg.want_write = want_write;
  // Write interest lives on the *destination* fd; its own read interest
  // stays on regardless.
  epoll_event ev{};
  ev.events =
      EPOLLIN | (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = leg.to;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, leg.to, &ev);
}

void ChaosProxy::close_link(Link& link, bool rst) {
  const auto close_fd = [&](int fd) {
    if (fd < 0) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    by_fd_.erase(fd);
    if (rst) {
      close_with_rst(fd);
    } else {
      ::close(fd);
    }
  };
  if (link.up.from < 0 && link.down.from < 0) return;
  // Count down before the close: a peer that observes the EOF must not be
  // able to read a stale open_links() afterwards.
  open_links_.fetch_sub(1);
  close_fd(link.up.from);
  close_fd(link.down.from);
  link.up.from = link.down.from = -1;
  link.up.to = link.down.to = -1;
  link.up.held.clear();
  link.down.held.clear();
}

}  // namespace fbdr::netio
