#include "netio/node_host.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "net/framed_channel.h"
#include "netio/socket_pipe.h"
#include "server/change.h"

namespace fbdr::netio {

namespace {

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string ok(const std::vector<std::string>& payload = {}) {
  std::string reply = "ok " + std::to_string(payload.size()) + "\n";
  for (const std::string& line : payload) reply += line + "\n";
  return reply;
}

std::string err(const std::string& message) { return "err " + message + "\n"; }

/// "<a>=<v1>,<v2>;<a2>=..." into attribute/value pairs.
std::vector<std::pair<std::string, std::vector<std::string>>> parse_attrs(
    const std::string& text) {
  std::vector<std::pair<std::string, std::vector<std::string>>> attrs;
  if (text.empty()) return attrs;
  for (const std::string& part : split(text, ';')) {
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("attribute without '=': " + part);
    }
    attrs.emplace_back(part.substr(0, eq), split(part.substr(eq + 1), ','));
  }
  return attrs;
}

}  // namespace

ldap::Query parse_query_spec(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, '|');
  if (parts.size() != 3) {
    throw std::invalid_argument("query spec must be base|scope|filter: " + spec);
  }
  ldap::Scope scope;
  if (parts[1] == "base") {
    scope = ldap::Scope::Base;
  } else if (parts[1] == "one") {
    scope = ldap::Scope::OneLevel;
  } else if (parts[1] == "sub") {
    scope = ldap::Scope::Subtree;
  } else {
    throw std::invalid_argument("scope must be base|one|sub: " + parts[1]);
  }
  return ldap::Query::parse(parts[0], scope, parts[2]);
}

NodeHost::NodeHost(Options options) : options_(std::move(options)) {
  EpollServer::Options server_options;
  server_options.idle_timeout_ms = options_.idle_timeout_ms;
  server_options.max_connections = options_.max_connections;
  if (options_.role == Role::Root) {
    store_ = std::make_unique<server::DirectoryServer>("ldap://" +
                                                       options_.name);
    store_->add_context({ldap::Dn::parse(options_.suffix), {}});
    // Seed the suffix base entry so applies under it resolve, matching how
    // every in-process fixture bootstraps its master.
    auto base = std::make_shared<ldap::Entry>(ldap::Dn::parse(options_.suffix));
    base->set_values("objectclass", {"organization"});
    store_->load(std::move(base));
    master_ = std::make_unique<resync::ReSyncMaster>(*store_);
    master_->set_session_time_limit(options_.session_time_limit);
    server_ = std::make_unique<EpollServer>(*master_, server_options);
  } else {
    topology::RelayNode::Config config;
    config.name = options_.name;
    config.suffix = ldap::Dn::parse(options_.suffix);
    config.retry = options_.retry;
    config.session_time_limit = options_.session_time_limit;
    config.framed = true;  // the upstream hop really is framed bytes now
    relay_ = std::make_unique<topology::RelayNode>(std::move(config));

    SocketPipe::Options pipe;
    pipe.addr = options_.parent;
    pipe.io_timeout_ms = options_.io_timeout_ms;
    pipe.connect_timeout_ms = options_.connect_timeout_ms;
    auto channel = std::make_shared<net::FramedChannel>(
        std::make_shared<SocketPipe>(std::move(pipe)));
    relay_->connect(std::move(channel), options_.parent_url);
    server_ = std::make_unique<EpollServer>(*relay_, server_options);
  }
}

resync::ReSyncEndpoint& NodeHost::endpoint() {
  if (master_) return *master_;
  return *relay_;
}

void NodeHost::run() {
  server_->listen(options_.listen);
  server_->listen_control(options_.control,
                          [this](const std::string& line) {
                            return handle_control(line);
                          });
  server_->run();
}

std::string NodeHost::handle_control(const std::string& line) {
  try {
    std::istringstream in(line);
    std::string command;
    in >> command;

    if (command == "ping") return ok();

    if (command == "quit") {
      server_->request_stop();
      return ok();
    }

    if (command == "tick") {
      std::uint64_t ticks = 1;
      in >> ticks;
      std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
      endpoint().tick(ticks);
      return ok();
    }

    if (command == "install") {
      if (!relay_) return err("install: not a relay");
      std::string spec;
      std::getline(in >> std::ws, spec);
      std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
      relay_->add_filter(parse_query_spec(spec));
      return ok();
    }

    if (command == "installall") {
      if (!relay_) return err("installall: not a relay");
      std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
      return ok({relay_->install_all() ? "1" : "0"});
    }

    if (command == "sync") {
      if (!relay_) return err("sync: not a relay");
      std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
      relay_->sync();
      return ok();
    }

    if (command == "pump") {
      if (!master_) return err("pump: not the root");
      std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
      master_->pump();
      return ok();
    }

    if (command == "apply") {
      std::string rest;
      std::getline(in >> std::ws, rest);
      return do_apply(rest);
    }

    if (command == "keys") {
      std::string spec;
      std::getline(in >> std::ws, spec);
      return do_keys(spec);
    }

    if (command == "health") return do_health();

    return err("unknown command: " + command);
  } catch (const std::exception& e) {
    return err(e.what());
  }
}

std::string NodeHost::do_apply(const std::string& rest) {
  if (!store_) return err("apply: not the root");
  std::istringstream in(rest);
  std::string op;
  in >> op;
  std::string spec;
  std::getline(in >> std::ws, spec);

  std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
  if (op == "del") {
    store_->remove(ldap::Dn::parse(spec));
    return ok();
  }
  const std::size_t bar = spec.find('|');
  if (bar == std::string::npos) return err("apply " + op + ": missing '|'");
  const ldap::Dn dn = ldap::Dn::parse(spec.substr(0, bar));
  const auto attrs = parse_attrs(spec.substr(bar + 1));

  if (op == "add") {
    auto entry = std::make_shared<ldap::Entry>(dn);
    for (const auto& [attr, values] : attrs) entry->set_values(attr, values);
    store_->add(std::move(entry));
    return ok();
  }
  if (op == "mod") {
    std::vector<server::Modification> mods;
    for (const auto& [attr, values] : attrs) {
      mods.push_back({server::Modification::Op::Replace, attr, values});
    }
    store_->modify(dn, std::move(mods));
    return ok();
  }
  return err("apply: op must be add|del|mod");
}

std::string NodeHost::do_keys(const std::string& spec) {
  const ldap::Query query = parse_query_spec(spec);
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
    const server::DirectoryServer& content =
        store_ ? *store_ : relay_->mirror();
    for (const ldap::EntryPtr& entry : content.evaluate(query)) {
      keys.push_back(entry->dn().norm_key());
    }
  }
  std::sort(keys.begin(), keys.end());
  return ok(keys);
}

std::string NodeHost::do_health() {
  std::lock_guard<std::mutex> lock(server_->endpoint_mutex());
  std::vector<std::string> lines;
  if (master_) {
    lines.push_back("role root");
    lines.push_back("sessions " + std::to_string(master_->session_count()));
    lines.push_back("now " + std::to_string(master_->now()));
  } else {
    lines.push_back("role relay");
    lines.push_back("epoch " + std::to_string(relay_->epoch()));
    lines.push_back("recoveries " + std::to_string(relay_->recoveries()));
    lines.push_back("degraded " + std::string(relay_->any_degraded() ? "1" : "0"));
    lines.push_back("failed_streak " + std::to_string(relay_->failed_streak()));
    lines.push_back("root_time " + std::to_string(relay_->root_time()));
    const net::HealthStats upstream = relay_->upstream_health();
    lines.push_back("full_reloads " +
                    std::to_string(upstream.total_full_reloads()));
    lines.push_back("reconciles " + std::to_string(upstream.total_reconciles()));
    lines.push_back("sessions " +
                    std::to_string(relay_->downstream_master().session_count()));
  }
  const EpollServer::Stats stats = server_->stats();
  lines.push_back("frames_in " + std::to_string(stats.frames_in));
  lines.push_back("frames_out " + std::to_string(stats.frames_out));
  lines.push_back("connections " + std::to_string(server_->open_connections()));
  lines.push_back("garbled_closes " + std::to_string(stats.garbled_closes));
  lines.push_back("backpressure " + std::to_string(stats.backpressure_pauses));
  lines.push_back("idle_reaped " + std::to_string(stats.idle_reaped));
  lines.push_back("shed_accepts " + std::to_string(stats.shed_accepts));
  return ok(lines);
}

}  // namespace fbdr::netio
