#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/fault_injector.h"
#include "netio/socket_addr.h"

namespace fbdr::netio {

/// Byte-level fault model for one direction of a proxied link. Every
/// probability is drawn once per forwarded chunk from a per-connection,
/// per-direction seeded RNG stream, so the fault sequence a given
/// connection experiences is a pure function of (proxy seed, connection
/// index, direction, chunk index) — the byte-level mirror of
/// net::FaultConfig's per-exchange draws.
struct LinkFaults {
  /// Close the connection (FIN) instead of forwarding — "connection drop".
  double drop = 0.0;
  /// Reset the connection (RST via SO_LINGER 0) instead of forwarding.
  double reset = 0.0;
  /// Swallow this chunk forever but keep the connection up — the half-open
  /// blackhole a silently failed route produces.
  double blackhole = 0.0;
  /// Flip one random bit of the chunk before forwarding.
  double corrupt = 0.0;
  /// Forward only a prefix of the chunk, then reset — a mid-frame cut.
  double truncate = 0.0;
  /// Hold every chunk this long before forwarding (link latency).
  std::uint64_t delay_ms = 0;
  /// Forward at most this many bytes per pump iteration (~2ms when there is
  /// a backlog) — a slow link. 0 = unthrottled.
  std::size_t throttle_bytes = 0;
};

/// A seeded man-in-the-middle for one replication link: listens on a
/// TCP/Unix address, opens one upstream connection per accepted client, and
/// relays bytes both ways through a deterministic fault model. Where
/// net::FaultyPipe injects faults at the frame seam inside one process,
/// ChaosProxy injects them into the real byte stream between real
/// processes — resets the kernel delivers, partitions that outlast
/// connections, corruption the codec checksum must catch, truncation the
/// reassembler must reject — so the socket stack's recovery machinery
/// (SocketPipe reconnect, RetryPolicy, replay-safe cookies, StaleCookie
/// full reloads, digest reconciliation) is exercised by the same fault
/// families the in-process chaos suites replay.
///
/// The loop runs on a background thread (start()); all control-plane
/// setters are thread-safe and take effect on the next pump iteration.
/// Faults are only ever injected, never invented: with zeroed LinkFaults
/// and no partition the proxy is a transparent byte relay.
class ChaosProxy {
 public:
  struct Options {
    SocketAddr listen;    // where clients (the downstream node) connect
    SocketAddr upstream;  // the real server (the parent node)
    std::uint64_t seed = 1;
    int connect_timeout_ms = 2000;  // proxy -> upstream connect deadline
  };

  struct Counters {
    std::uint64_t connections = 0;       // client connections accepted
    std::uint64_t refused_connects = 0;  // closed at accept (partition)
    std::uint64_t failed_upstream = 0;   // upstream connect failures
    std::uint64_t drops = 0;             // connections closed by `drop`
    std::uint64_t resets = 0;            // connections reset by `reset`/`truncate`
    std::uint64_t corrupted = 0;         // chunks with a flipped bit
    std::uint64_t truncated = 0;         // chunks cut mid-frame
    std::uint64_t blackholed = 0;        // chunks swallowed (incl. partition)
    std::uint64_t delayed = 0;           // chunks held by delay/throttle
    std::uint64_t chunks = 0;            // chunks read off either side
    std::uint64_t bytes_up = 0;          // client -> upstream bytes forwarded
    std::uint64_t bytes_down = 0;        // upstream -> client bytes forwarded

    std::uint64_t faults() const {
      return refused_connects + drops + resets + corrupted + truncated +
             blackholed;
    }
  };

  explicit ChaosProxy(Options options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener; returns the bound address (TCP port 0 resolved).
  /// Throws std::runtime_error on failure.
  SocketAddr listen();

  /// Runs the relay loop on a background thread until stop().
  void start();

  /// Stops the loop and closes every proxied connection (idempotent).
  void stop();

  /// Replaces the per-direction fault models. `up` shapes client->upstream
  /// traffic (requests), `down` upstream->client (responses).
  void set_faults(const LinkFaults& up, const LinkFaults& down);

  /// Maps a net::FaultConfig onto link faults for both directions, the
  /// translation that keeps socket chaos schedules comparable with
  /// in-process ones: drop_request/drop_response -> per-direction drop,
  /// reset -> reset, corrupt/truncate -> both directions, delay ->
  /// max_delay_ticks * ms_per_tick of link latency, outage >= 1.0 -> a
  /// full partition window (set_partition).
  void apply(const net::FaultConfig& config, std::uint64_t ms_per_tick = 0);

  /// Full partition: while on, new connections are closed at accept and
  /// every chunk on an established connection is blackholed (half-open).
  void set_partition(bool on);
  bool partitioned() const;

  /// Severs every currently proxied connection with a reset — the abrupt
  /// end of a partition, or a stateful middlebox flushing its table.
  void drop_connections();

  Counters counters() const;
  std::size_t open_links() const;

 private:
  struct HeldChunk {
    std::chrono::steady_clock::time_point release;
    std::vector<std::uint8_t> bytes;
  };

  /// One direction of one proxied connection: bytes read from `from` are
  /// damaged per `faults` draws on `rng`, then queued toward `to`.
  struct Leg {
    int from = -1;
    int to = -1;
    std::mt19937_64 rng;
    std::deque<HeldChunk> held;          // delayed / throttled backlog
    std::vector<std::uint8_t> out;       // written-when-writable queue
    std::size_t out_offset = 0;
    bool want_write = false;
    bool peer_gone = false;              // EOF on `from`: flush then close
  };

  struct Link {
    std::uint64_t id = 0;
    Leg up;    // client -> upstream
    Leg down;  // upstream -> client
  };

  bool poll_once(int timeout_ms);
  void accept_ready();
  void read_ready(Link& link, Leg& leg, bool upward);
  void write_ready(Link& link, Leg& leg);
  /// Moves released/throttle-budgeted held bytes into the out queue and
  /// flushes what the kernel takes. Returns false when the link died.
  bool pump_leg(Link& link, Leg& leg);
  void update_interest(Leg& leg);
  void close_link(Link& link, bool rst);
  bool chance(std::mt19937_64& rng, double probability);
  LinkFaults faults_for(bool upward) const;
  bool has_pending_work() const;

  Options options_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;

  mutable std::mutex config_mutex_;
  LinkFaults up_faults_;
  LinkFaults down_faults_;
  bool partition_ = false;

  std::map<int, Link*> by_fd_;  // both fds of a link point at it
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t next_link_id_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drop_requested_{false};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> refused_connects_{0};
  std::atomic<std::uint64_t> failed_upstream_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> blackholed_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
  std::atomic<std::size_t> open_links_{0};
};

}  // namespace fbdr::netio
