#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/framed_channel.h"
#include "netio/frame_reassembler.h"
#include "netio/socket_addr.h"

namespace fbdr::netio {

/// net::BytePipe over a real stream socket: the client end of a framed link
/// whose server is an EpollServer (or any peer speaking wire frames over
/// TCP/Unix sockets).
///
/// Failure model — everything maps onto the retry machinery that already
/// exists above the Channel seam:
///
///  - Any transport fault (connect refused, send/recv error, peer close,
///    read deadline, garbled response header) closes the connection and
///    throws net::TransportError. Nothing is retried here.
///  - net::exchange_with_retry / the replica's RetryPolicy supply the
///    backoff and re-sends; the next transfer() transparently reconnects.
///    Replay-safe cookie sequence numbers make the re-send idempotent, so
///    a reconnect mid-session heals exactly like a dropped frame on the
///    in-process FaultyPipe.
///  - elapse() sleeps backoff_ms_per_tick per logical tick (default 0:
///    logical backoff costs no wall clock, which is what tests want).
///
/// The pipe is intentionally single-connection and synchronous: one
/// request frame out, one response frame back. Concurrency comes from many
/// pipes (one per replica session), multiplexed server-side by epoll.
class SocketPipe final : public net::BytePipe {
 public:
  struct Options {
    SocketAddr addr;
    int connect_timeout_ms = 2000;
    /// Deadline for one whole response (applies per transfer()).
    int io_timeout_ms = 10000;
    /// Wall-clock milliseconds per logical tick in elapse().
    int backoff_ms_per_tick = 0;
  };

  explicit SocketPipe(Options options);
  ~SocketPipe() override;

  SocketPipe(const SocketPipe&) = delete;
  SocketPipe& operator=(const SocketPipe&) = delete;

  wire::Bytes transfer(const wire::Bytes& frame) override;
  void send(const wire::Bytes& frame) override;
  void elapse(std::uint64_t ticks) override;

  bool connected() const noexcept { return fd_ >= 0; }
  /// Successful (re)connects so far — 1 after the first exchange, +1 per
  /// reconnect after a transport fault.
  std::uint64_t connects() const noexcept { return connects_; }

  void close();

 private:
  void ensure_connected();
  void write_all(const wire::Bytes& frame);
  wire::Bytes read_frame();
  [[noreturn]] void fail(const std::string& what);

  Options options_;
  int fd_ = -1;
  FrameReassembler reassembler_;
  std::uint64_t connects_ = 0;
};

}  // namespace fbdr::netio
