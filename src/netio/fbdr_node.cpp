// fbdr_node: one replication node as one OS process.
//
//   fbdr_node --role root  --name root --suffix o=xyz
//             --listen unix:/tmp/t/root.sock --control unix:/tmp/t/root.ctl
//   fbdr_node --role relay --name d1 --suffix o=xyz
//             --listen unix:/tmp/t/d1.sock --control unix:/tmp/t/d1.ctl
//             --parent unix:/tmp/t/root.sock --parent-url ldap://root
//
// The process serves the ReSync protocol as wire frames on --listen and the
// line-based control plane (see src/netio/control.h) on --control, both off
// one single-threaded epoll loop. ProcessTopology fork/execs these and
// drives the tree through the control plane; the README quickstart drives
// them by hand with socat/nc.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "netio/node_host.h"

namespace {

[[noreturn]] void usage(const char* reason) {
  std::fprintf(stderr,
               "fbdr_node: %s\n"
               "usage: fbdr_node --role root|relay --name <name> "
               "--listen <addr> --control <addr>\n"
               "       [--suffix <dn>] [--parent <addr> --parent-url <url>]\n"
               "       [--session-limit <ticks>] [--retry-attempts <n>]\n"
               "       [--io-timeout-ms <ms>] [--connect-timeout-ms <ms>]\n"
               "       [--idle-timeout-ms <ms>] [--max-conns <n>]\n"
               "       [--crash-on-start]\n"
               "addresses: tcp:host:port or unix:/path\n",
               reason);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using fbdr::netio::NodeHost;
  using fbdr::netio::SocketAddr;

  NodeHost::Options options;
  bool have_role = false, have_listen = false, have_control = false;
  bool have_parent = false, crash_on_start = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    try {
      if (arg == "--role") {
        const std::string role = value();
        if (role == "root") {
          options.role = NodeHost::Role::Root;
        } else if (role == "relay") {
          options.role = NodeHost::Role::Relay;
        } else {
          usage("--role must be root or relay");
        }
        have_role = true;
      } else if (arg == "--name") {
        options.name = value();
      } else if (arg == "--suffix") {
        options.suffix = value();
      } else if (arg == "--listen") {
        options.listen = SocketAddr::parse(value());
        have_listen = true;
      } else if (arg == "--control") {
        options.control = SocketAddr::parse(value());
        have_control = true;
      } else if (arg == "--parent") {
        options.parent = SocketAddr::parse(value());
        have_parent = true;
      } else if (arg == "--parent-url") {
        options.parent_url = value();
      } else if (arg == "--session-limit") {
        options.session_time_limit = std::stoull(value());
      } else if (arg == "--retry-attempts") {
        options.retry.max_attempts = std::stoull(value());
      } else if (arg == "--io-timeout-ms") {
        options.io_timeout_ms = std::stoi(value());
      } else if (arg == "--connect-timeout-ms") {
        options.connect_timeout_ms = std::stoi(value());
      } else if (arg == "--idle-timeout-ms") {
        options.idle_timeout_ms = std::stoi(value());
      } else if (arg == "--max-conns") {
        options.max_connections = std::stoull(value());
      } else if (arg == "--crash-on-start") {
        // Supervision regression hook: die before serving anything, as a
        // node whose binary/config is broken would.
        crash_on_start = true;
      } else {
        usage(("unknown argument: " + arg).c_str());
      }
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }

  if (!have_role) usage("--role is required");
  if (options.name.empty()) usage("--name is required");
  if (!have_listen || !have_control) usage("--listen and --control are required");
  if (options.role == NodeHost::Role::Relay && !have_parent) {
    usage("a relay needs --parent");
  }
  if (options.parent_url.empty() && have_parent) {
    options.parent_url = "ldap://parent";
  }
  if (crash_on_start) {
    std::fprintf(stderr, "fbdr_node: --crash-on-start\n");
    return 3;
  }

  try {
    NodeHost host(std::move(options));
    host.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fbdr_node: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
