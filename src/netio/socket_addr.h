#pragma once

#include <cstdint>
#include <string>

namespace fbdr::netio {

/// A transport address the socket layer can listen on or connect to:
///
///   "tcp:<host>:<port>"   TCP over loopback or a real interface; port 0
///                         asks the kernel for a free port (the bound
///                         address reports the resolved one)
///   "unix:<path>"         a Unix-domain stream socket at <path>
///
/// Unix sockets are the default fabric of the in-machine process topology
/// (no port allocation races, peers addressed by file path); TCP is what a
/// spread-across-hosts deployment uses. Both speak the same frame stream.
struct SocketAddr {
  enum class Kind { Tcp, Unix };

  Kind kind = Kind::Unix;
  std::string host;         // Tcp only
  std::uint16_t port = 0;   // Tcp only
  std::string path;         // Unix only

  static SocketAddr tcp(std::string host, std::uint16_t port);
  static SocketAddr unix_path(std::string path);

  /// Parses the "tcp:host:port" / "unix:/path" spelling above. Throws
  /// std::invalid_argument on anything else.
  static SocketAddr parse(const std::string& spec);

  /// The canonical spelling parse() accepts.
  std::string to_string() const;
};

/// True when this process may create and bind loopback sockets — the probe
/// the tests, benches and tier-1 stage use to skip loudly instead of
/// failing inside sandboxes that forbid networking. When false, `reason`
/// (if given) receives the errno text of the first refused syscall.
bool sockets_available(std::string* reason = nullptr);

// --- low-level helpers shared by SocketPipe and EpollServer -------------
// All return a valid fd or -1 with `error` filled; fds are close-on-exec.

/// Binds + listens at `addr`; on success writes the actually-bound address
/// (TCP port 0 resolved) to `bound`. A pre-existing Unix socket path is
/// unlinked first (a crashed predecessor's leftover).
int open_listener(const SocketAddr& addr, int backlog, SocketAddr* bound,
                  std::string* error);

/// Connects to `addr` with a deadline, returning a blocking-mode fd.
int open_client(const SocketAddr& addr, int timeout_ms, std::string* error);

/// Puts `fd` into non-blocking mode. Returns false on failure.
bool set_nonblocking(int fd);

}  // namespace fbdr::netio
