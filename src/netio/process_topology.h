#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "netio/control.h"
#include "netio/socket_addr.h"

namespace fbdr::netio {

/// A replication tree where every node is a real OS process: the root
/// master and each relay run as fork/exec'd fbdr_node binaries, wired over
/// Unix-domain sockets in a private workdir, driven through the control
/// plane. This is TopologyRuntime with the simulation layer peeled away —
/// same deepest-first tick protocol, same heal-through-StaleCookie recovery
/// story, but the "network" is the kernel's and a crash is a SIGKILL.
///
/// Lifecycle: add_root()/add_relay() declare the tree, start() spawns every
/// process (parents first) and waits for each control plane to answer ping,
/// tick() drives one replication round, crash()/respawn() model a node
/// failure, stop() (or the destructor) quits or kills everything and reaps.
///
/// Supervision (set_supervisor): every tick() opens with a waitpid sweep, so
/// a child that died — crashed, OOM-killed, crash()ed by a test — is reaped
/// immediately (no zombies) and its exit recorded. With supervision enabled
/// the dead node is respawned automatically after an exponential backoff
/// (base << restarts, capped, plus a deterministic seed/name/attempt jitter
/// so a whole tree never restarts in lockstep); a node that dies more than
/// max_restarts times without a stable run in between lands in the terminal
/// GaveUp state and is left down — the rest of the tree keeps serving.
/// Optional liveness probes ping every Running node's control plane each
/// probe_every_ticks ticks and treat a dead plane like a crash.
class ProcessTopology {
 public:
  struct Options {
    std::string node_binary;  // path to the fbdr_node executable
    std::string workdir;      // sockets live here (private, e.g. mkdtemp)
    std::string suffix = "o=xyz";
    std::uint64_t session_time_limit = 0;
    int spawn_timeout_ms = 10000;
    int control_timeout_ms = 15000;
    /// Upstream SocketPipe deadlines inside each relay process (0 = the
    /// fbdr_node defaults). Chaos tests shrink these so a partitioned link
    /// fails fast instead of eating the 10s default per attempt.
    int node_io_timeout_ms = 0;
    int node_connect_timeout_ms = 0;
  };

  /// Node lifecycle under supervision. Declared -> Running on start();
  /// Running -> Backoff on an observed death; Backoff -> Running on a
  /// successful respawn, or -> GaveUp once the restart budget is spent.
  /// Stopped is the deliberate end state (stop()/manual reap).
  enum class NodeState { Declared, Running, Backoff, GaveUp, Stopped };

  struct SupervisorOptions {
    bool enabled = false;
    /// Respawn attempts allowed without an intervening stable run before
    /// the node is abandoned as GaveUp.
    std::uint64_t max_restarts = 5;
    std::uint64_t backoff_base_ticks = 1;  // first wait; doubles per attempt
    std::uint64_t backoff_cap_ticks = 8;
    std::uint64_t jitter_ticks = 1;  // deterministic extra wait in [0, this]
    std::uint64_t seed = 1;          // jitter stream
    /// A node Running this many consecutive ticks gets its restart budget
    /// back — the cap punishes restart storms, not lifetime restarts.
    std::uint64_t stable_ticks_reset = 8;
    /// Ping every Running node each N ticks; 0 disables probing. A probe
    /// failure is treated exactly like an observed crash.
    std::uint64_t probe_every_ticks = 0;
  };

  explicit ProcessTopology(Options options);
  ~ProcessTopology();

  ProcessTopology(const ProcessTopology&) = delete;
  ProcessTopology& operator=(const ProcessTopology&) = delete;

  void add_root(const std::string& name);

  /// `filter_specs` are "base|scope|filter" query specs (parse_query_spec)
  /// installed on the relay right after it spawns — its admission set.
  void add_relay(const std::string& name, const std::string& parent,
                 std::vector<std::string> filter_specs);

  /// Enables/configures supervision. Call before start().
  void set_supervisor(SupervisorOptions options);

  /// Extra argv appended to this node's every spawn (e.g. --crash-on-start,
  /// --idle-timeout-ms). Takes effect at the node's next (re)spawn and
  /// persists across respawns.
  void set_extra_args(const std::string& name, std::vector<std::string> args);

  /// Points the relay's upstream at `addr` instead of its parent's real
  /// listener — the seam where a ChaosProxy goes. Persists across respawns,
  /// so a supervised node heals through the same faulty link it died on.
  void set_parent_proxy(const std::string& name, const SocketAddr& addr);

  /// Spawns every declared node (parents before children), waits for each
  /// control plane, installs relay filters. Throws on spawn/ping failure.
  void start();

  /// One replication round, exactly TopologyRuntime::tick(): every relay
  /// syncs deepest-first (leaves pull before their parents change again),
  /// then the root pumps its journal into sessions and advances one tick.
  void tick();

  ControlClient& control(const std::string& name);

  /// Sorted norm keys of the node's local content matching the query spec.
  std::vector<std::string> keys(const std::string& name,
                                const std::string& query_spec);

  std::map<std::string, std::string> health(const std::string& name);

  /// SIGKILLs the node's process — no goodbye, sessions and mirror gone.
  /// Under supervision the node comes back on the normal backoff schedule.
  /// With reap_now=false the corpse is left as a zombie for the next
  /// supervise() sweep to find — the shape of an unobserved crash.
  void crash(const std::string& name, bool reap_now = true);

  /// Spawns a crashed (or stopped) node again on the same socket paths and
  /// re-installs its filters. Descendants heal on subsequent tick()s via
  /// the stale-cookie / reconciliation recovery path. Manual respawn clears
  /// supervision state (fresh restart budget).
  void respawn(const std::string& name);

  /// One supervision pass: reap every dead child (always, supervised or
  /// not), schedule/execute backoff respawns, run due liveness probes.
  /// tick() calls this first; tests may call it directly to step the
  /// supervisor without moving replication.
  void supervise();

  void stop();

  bool running(const std::string& name) const;
  int depth(const std::string& name) const;
  std::vector<std::string> relay_names_deepest_first() const;

  NodeState state(const std::string& name) const;
  std::uint64_t restarts(const std::string& name) const;
  /// Deaths noticed by the waitpid sweep (crashes + kills), as opposed to
  /// deliberate stop()/reap.
  std::uint64_t unexpected_exits(const std::string& name) const;
  std::uint64_t ticks() const { return tick_count_; }

  /// One line per node: "<state> restarts=<n> exits=<n>" — the control
  /// panel a soak asserts against.
  std::map<std::string, std::string> supervisor_report() const;

 private:
  struct Node {
    std::string name;
    std::string parent;  // empty = root
    std::vector<std::string> filters;
    std::vector<std::string> extra_args;
    int depth = 0;
    SocketAddr listen;
    SocketAddr control_addr;
    SocketAddr parent_override;  // e.g. a ChaosProxy in front of the parent
    bool has_parent_override = false;
    pid_t pid = -1;
    std::unique_ptr<ControlClient> client;
    // Supervision state:
    NodeState state = NodeState::Declared;
    std::uint64_t restarts = 0;          // respawn attempts this storm
    std::uint64_t unexpected_exits = 0;  // deaths seen by the waitpid sweep
    std::uint64_t backoff_until = 0;     // tick_count_ gate for next attempt
    std::uint64_t running_since = 0;     // tick_count_ at last (re)spawn
    int last_exit_status = 0;            // raw waitpid status
  };

  Node& node(const std::string& name);
  const Node& node(const std::string& name) const;
  void spawn(Node& node);
  void wait_ready(Node& node);
  void install_filters(Node& node);
  void reap(Node& node, bool force);
  /// Records a death seen by waitpid/probe and schedules the respawn (or
  /// GaveUp) under supervision.
  void note_death(Node& node);
  std::uint64_t backoff_ticks(const Node& node) const;
  bool try_respawn(Node& node);

  Options options_;
  SupervisorOptions supervisor_;
  std::vector<std::string> order_;  // declaration order (parents first)
  std::map<std::string, Node> nodes_;
  std::string root_;
  std::uint64_t tick_count_ = 0;
};

}  // namespace fbdr::netio
