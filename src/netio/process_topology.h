#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "netio/control.h"
#include "netio/socket_addr.h"

namespace fbdr::netio {

/// A replication tree where every node is a real OS process: the root
/// master and each relay run as fork/exec'd fbdr_node binaries, wired over
/// Unix-domain sockets in a private workdir, driven through the control
/// plane. This is TopologyRuntime with the simulation layer peeled away —
/// same deepest-first tick protocol, same heal-through-StaleCookie recovery
/// story, but the "network" is the kernel's and a crash is a SIGKILL.
///
/// Lifecycle: add_root()/add_relay() declare the tree, start() spawns every
/// process (parents first) and waits for each control plane to answer ping,
/// tick() drives one replication round, crash()/respawn() model a node
/// failure, stop() (or the destructor) quits or kills everything and reaps.
class ProcessTopology {
 public:
  struct Options {
    std::string node_binary;  // path to the fbdr_node executable
    std::string workdir;      // sockets live here (private, e.g. mkdtemp)
    std::string suffix = "o=xyz";
    std::uint64_t session_time_limit = 0;
    int spawn_timeout_ms = 10000;
    int control_timeout_ms = 15000;
  };

  explicit ProcessTopology(Options options);
  ~ProcessTopology();

  ProcessTopology(const ProcessTopology&) = delete;
  ProcessTopology& operator=(const ProcessTopology&) = delete;

  void add_root(const std::string& name);

  /// `filter_specs` are "base|scope|filter" query specs (parse_query_spec)
  /// installed on the relay right after it spawns — its admission set.
  void add_relay(const std::string& name, const std::string& parent,
                 std::vector<std::string> filter_specs);

  /// Spawns every declared node (parents before children), waits for each
  /// control plane, installs relay filters. Throws on spawn/ping failure.
  void start();

  /// One replication round, exactly TopologyRuntime::tick(): every relay
  /// syncs deepest-first (leaves pull before their parents change again),
  /// then the root pumps its journal into sessions and advances one tick.
  void tick();

  ControlClient& control(const std::string& name);

  /// Sorted norm keys of the node's local content matching the query spec.
  std::vector<std::string> keys(const std::string& name,
                                const std::string& query_spec);

  std::map<std::string, std::string> health(const std::string& name);

  /// SIGKILLs the node's process — no goodbye, sessions and mirror gone.
  void crash(const std::string& name);

  /// Spawns a crashed (or stopped) node again on the same socket paths and
  /// re-installs its filters. Descendants heal on subsequent tick()s via
  /// the stale-cookie / reconciliation recovery path.
  void respawn(const std::string& name);

  void stop();

  bool running(const std::string& name) const;
  int depth(const std::string& name) const;
  std::vector<std::string> relay_names_deepest_first() const;

 private:
  struct Node {
    std::string name;
    std::string parent;  // empty = root
    std::vector<std::string> filters;
    int depth = 0;
    SocketAddr listen;
    SocketAddr control_addr;
    pid_t pid = -1;
    std::unique_ptr<ControlClient> client;
  };

  Node& node(const std::string& name);
  const Node& node(const std::string& name) const;
  void spawn(Node& node);
  void wait_ready(Node& node);
  void install_filters(Node& node);
  void reap(Node& node, bool force);

  Options options_;
  std::vector<std::string> order_;  // declaration order (parents first)
  std::map<std::string, Node> nodes_;
  std::string root_;
};

}  // namespace fbdr::netio
