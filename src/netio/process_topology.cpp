#include "netio/process_topology.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace fbdr::netio {

namespace {

std::chrono::steady_clock::time_point deadline_after(int ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

}  // namespace

ProcessTopology::ProcessTopology(Options options)
    : options_(std::move(options)) {
  if (options_.node_binary.empty() || options_.workdir.empty()) {
    throw std::invalid_argument(
        "ProcessTopology needs node_binary and workdir");
  }
}

ProcessTopology::~ProcessTopology() {
  try {
    stop();
  } catch (...) {
  }
}

void ProcessTopology::add_root(const std::string& name) {
  if (!root_.empty()) throw std::logic_error("root already declared: " + root_);
  Node node;
  node.name = name;
  node.depth = 0;
  node.listen = SocketAddr::unix_path(options_.workdir + "/" + name + ".sock");
  node.control_addr =
      SocketAddr::unix_path(options_.workdir + "/" + name + ".ctl");
  root_ = name;
  order_.push_back(name);
  nodes_.emplace(name, std::move(node));
}

void ProcessTopology::add_relay(const std::string& name,
                                const std::string& parent,
                                std::vector<std::string> filter_specs) {
  const Node& up = node(parent);  // throws on unknown parent
  Node relay;
  relay.name = name;
  relay.parent = parent;
  relay.filters = std::move(filter_specs);
  relay.depth = up.depth + 1;
  relay.listen = SocketAddr::unix_path(options_.workdir + "/" + name + ".sock");
  relay.control_addr =
      SocketAddr::unix_path(options_.workdir + "/" + name + ".ctl");
  order_.push_back(name);
  nodes_.emplace(name, std::move(relay));
}

ProcessTopology::Node& ProcessTopology::node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node: " + name);
  return it->second;
}

const ProcessTopology::Node& ProcessTopology::node(
    const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node: " + name);
  return it->second;
}

void ProcessTopology::spawn(Node& n) {
  std::vector<std::string> args = {
      options_.node_binary,
      "--role",    n.parent.empty() ? "root" : "relay",
      "--name",    n.name,
      "--suffix",  options_.suffix,
      "--listen",  n.listen.to_string(),
      "--control", n.control_addr.to_string(),
      "--session-limit", std::to_string(options_.session_time_limit),
  };
  if (options_.node_io_timeout_ms > 0) {
    args.push_back("--io-timeout-ms");
    args.push_back(std::to_string(options_.node_io_timeout_ms));
  }
  if (options_.node_connect_timeout_ms > 0) {
    args.push_back("--connect-timeout-ms");
    args.push_back(std::to_string(options_.node_connect_timeout_ms));
  }
  if (!n.parent.empty()) {
    args.push_back("--parent");
    args.push_back(n.has_parent_override ? n.parent_override.to_string()
                                         : node(n.parent).listen.to_string());
    args.push_back("--parent-url");
    args.push_back("ldap://" + n.parent);
  }
  for (const std::string& extra : n.extra_args) args.push_back(extra);

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Reached only when exec fails; the parent sees it as ping timeout.
    std::_Exit(127);
  }
  n.pid = pid;
  n.client.reset();
}

void ProcessTopology::wait_ready(Node& n) {
  const auto deadline = deadline_after(options_.spawn_timeout_ms);
  std::string last_error = "never attempted";
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (n.pid > 0 && ::waitpid(n.pid, &status, WNOHANG) == n.pid) {
      n.pid = -1;
      throw std::runtime_error("node " + n.name + " exited during startup");
    }
    try {
      auto client = std::make_unique<ControlClient>(n.control_addr,
                                                    options_.control_timeout_ms);
      client->request("ping");
      n.client = std::move(client);
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  throw std::runtime_error("node " + n.name +
                           " not ready before deadline: " + last_error);
}

void ProcessTopology::install_filters(Node& n) {
  for (const std::string& spec : n.filters) {
    n.client->request("install " + spec);
  }
}

void ProcessTopology::start() {
  if (root_.empty()) throw std::logic_error("no root declared");
  for (const std::string& name : order_) {
    Node& n = node(name);
    spawn(n);
    wait_ready(n);
    install_filters(n);
    n.state = NodeState::Running;
    n.running_since = tick_count_;
  }
}

void ProcessTopology::set_supervisor(SupervisorOptions options) {
  supervisor_ = options;
}

void ProcessTopology::set_extra_args(const std::string& name,
                                     std::vector<std::string> args) {
  node(name).extra_args = std::move(args);
}

void ProcessTopology::set_parent_proxy(const std::string& name,
                                       const SocketAddr& addr) {
  Node& n = node(name);
  if (n.parent.empty()) {
    throw std::logic_error("root has no parent link to proxy: " + name);
  }
  n.parent_override = addr;
  n.has_parent_override = true;
}

std::vector<std::string> ProcessTopology::relay_names_deepest_first() const {
  std::vector<std::string> names;
  for (const std::string& name : order_) {
    if (!node(name).parent.empty()) names.push_back(name);
  }
  std::stable_sort(names.begin(), names.end(),
                   [this](const std::string& a, const std::string& b) {
                     return node(a).depth > node(b).depth;
                   });
  return names;
}

void ProcessTopology::tick() {
  ++tick_count_;
  supervise();
  // Deepest-first, like TopologyRuntime::tick(): each relay pulls from its
  // parent (and pumps its own downstream sessions inside sync()) before the
  // parent's content moves again, then the root routes its journal and the
  // clock advances.
  for (const std::string& name : relay_names_deepest_first()) {
    Node& n = node(name);
    if (n.pid <= 0 || !n.client) continue;  // down: degrades, later heals
    if (supervisor_.enabled) {
      // Under supervision a node may die mid-command (kill storms); the
      // round is lost for this relay, the next sweep notices the corpse.
      try {
        n.client->request("sync");
      } catch (const std::exception&) {
      }
    } else {
      n.client->request("sync");
    }
  }
  Node& r = node(root_);
  if (r.pid <= 0 || !r.client) return;  // root down: no pump, clock holds
  if (supervisor_.enabled) {
    try {
      r.client->request("pump");
      r.client->request("tick 1");
    } catch (const std::exception&) {
    }
  } else {
    r.client->request("pump");
    r.client->request("tick 1");
  }
}

void ProcessTopology::supervise() {
  // Sweep first — always, supervised or not — so no child ever lingers as
  // a zombie and unexpected deaths show up in the report.
  for (const std::string& name : order_) {
    Node& n = node(name);
    if (n.pid <= 0) continue;
    int status = 0;
    if (::waitpid(n.pid, &status, WNOHANG) == n.pid) {
      n.last_exit_status = status;
      n.pid = -1;
      n.client.reset();
      note_death(n);
    }
  }

  if (!supervisor_.enabled) return;

  // Liveness probes: a control plane that stopped answering is a crash the
  // kernel has not told us about yet (hung loop, half-dead process).
  if (supervisor_.probe_every_ticks > 0 &&
      tick_count_ % supervisor_.probe_every_ticks == 0) {
    for (const std::string& name : order_) {
      Node& n = node(name);
      if (n.pid <= 0 || !n.client) continue;
      try {
        n.client->request("ping");
      } catch (const std::exception&) {
        ::kill(n.pid, SIGKILL);
        ::waitpid(n.pid, &n.last_exit_status, 0);
        n.pid = -1;
        n.client.reset();
        note_death(n);
      }
    }
  }

  for (const std::string& name : order_) {
    Node& n = node(name);
    // A node that stayed up long enough earns its restart budget back: the
    // cap is for restart storms, not for a long life with rare crashes.
    if (n.state == NodeState::Running && n.restarts > 0 &&
        tick_count_ - n.running_since >= supervisor_.stable_ticks_reset) {
      n.restarts = 0;
    }
    if (n.state != NodeState::Backoff || tick_count_ < n.backoff_until) {
      continue;
    }
    try_respawn(n);
  }
}

void ProcessTopology::note_death(Node& n) {
  n.unexpected_exits += 1;
  if (n.state == NodeState::Stopped || n.state == NodeState::GaveUp) return;
  if (!supervisor_.enabled) {
    n.state = NodeState::Declared;  // down; manual respawn() may revive it
    return;
  }
  if (n.restarts >= supervisor_.max_restarts) {
    n.state = NodeState::GaveUp;
    return;
  }
  n.state = NodeState::Backoff;
  n.backoff_until = tick_count_ + backoff_ticks(n);
}

std::uint64_t ProcessTopology::backoff_ticks(const Node& n) const {
  const std::uint64_t shift = std::min<std::uint64_t>(n.restarts, 16);
  std::uint64_t wait =
      std::min(supervisor_.backoff_base_ticks << shift,
               supervisor_.backoff_cap_ticks);
  if (supervisor_.jitter_ticks > 0) {
    // Deterministic jitter: a pure function of (seed, name, attempt), so a
    // seeded soak replays exactly yet siblings never restart in lockstep.
    std::uint64_t h = supervisor_.seed ^ (n.restarts * 0x9E3779B97F4A7C15ULL);
    for (const char c : n.name) {
      h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
          0x100000001B3ULL;
    }
    wait += h % (supervisor_.jitter_ticks + 1);
  }
  return std::max<std::uint64_t>(wait, 1);
}

bool ProcessTopology::try_respawn(Node& n) {
  n.restarts += 1;
  try {
    spawn(n);
    wait_ready(n);
    install_filters(n);
    n.state = NodeState::Running;
    n.running_since = tick_count_;
    return true;
  } catch (const std::exception&) {
    // Died or stalled during startup — the classic crash loop.
    if (n.pid > 0) {
      ::kill(n.pid, SIGKILL);
      ::waitpid(n.pid, nullptr, 0);
      n.pid = -1;
    }
    n.client.reset();
    n.unexpected_exits += 1;
    if (n.restarts >= supervisor_.max_restarts) {
      n.state = NodeState::GaveUp;
    } else {
      n.state = NodeState::Backoff;
      n.backoff_until = tick_count_ + backoff_ticks(n);
    }
    return false;
  }
}

ControlClient& ProcessTopology::control(const std::string& name) {
  Node& n = node(name);
  if (!n.client) throw std::runtime_error("node not running: " + name);
  return *n.client;
}

std::vector<std::string> ProcessTopology::keys(const std::string& name,
                                               const std::string& query_spec) {
  return control(name).request("keys " + query_spec);
}

std::map<std::string, std::string> ProcessTopology::health(
    const std::string& name) {
  return control(name).health();
}

void ProcessTopology::crash(const std::string& name, bool reap_now) {
  Node& n = node(name);
  if (n.pid <= 0) return;
  if (!reap_now) {
    // Leave the corpse for the next supervise() sweep — the honest shape of
    // a crash nobody was watching for (and the zombie-reaping test's hook).
    ::kill(n.pid, SIGKILL);
    return;
  }
  ::kill(n.pid, SIGKILL);
  ::waitpid(n.pid, &n.last_exit_status, 0);
  n.pid = -1;
  n.client.reset();
  note_death(n);
}

void ProcessTopology::respawn(const std::string& name) {
  Node& n = node(name);
  if (n.pid > 0) throw std::logic_error("node still running: " + name);
  spawn(n);
  wait_ready(n);
  install_filters(n);
  // Manual revival is an operator override: fresh restart budget.
  n.state = NodeState::Running;
  n.running_since = tick_count_;
  n.restarts = 0;
}

void ProcessTopology::reap(Node& n, bool force) {
  if (n.pid <= 0) return;
  if (force) {
    ::kill(n.pid, SIGKILL);
  } else if (n.client) {
    try {
      n.client->request("quit");
    } catch (const std::exception&) {
      ::kill(n.pid, SIGKILL);
    }
  } else {
    ::kill(n.pid, SIGKILL);
  }
  ::waitpid(n.pid, nullptr, 0);
  n.pid = -1;
  n.client.reset();
}

void ProcessTopology::stop() {
  // Children before parents: a relay quitting mid-sync against a dead
  // parent would just eat its retry budget.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    Node& n = node(*it);
    reap(n, /*force=*/false);
    n.state = NodeState::Stopped;
  }
}

bool ProcessTopology::running(const std::string& name) const {
  return node(name).pid > 0;
}

int ProcessTopology::depth(const std::string& name) const {
  return node(name).depth;
}

ProcessTopology::NodeState ProcessTopology::state(
    const std::string& name) const {
  return node(name).state;
}

std::uint64_t ProcessTopology::restarts(const std::string& name) const {
  return node(name).restarts;
}

std::uint64_t ProcessTopology::unexpected_exits(
    const std::string& name) const {
  return node(name).unexpected_exits;
}

std::map<std::string, std::string> ProcessTopology::supervisor_report() const {
  const auto label = [](NodeState s) -> const char* {
    switch (s) {
      case NodeState::Declared: return "declared";
      case NodeState::Running: return "running";
      case NodeState::Backoff: return "backoff";
      case NodeState::GaveUp: return "gave_up";
      case NodeState::Stopped: return "stopped";
    }
    return "unknown";
  };
  std::map<std::string, std::string> report;
  for (const auto& [name, n] : nodes_) {
    report[name] = std::string(label(n.state)) +
                   " restarts=" + std::to_string(n.restarts) +
                   " exits=" + std::to_string(n.unexpected_exits);
  }
  return report;
}

}  // namespace fbdr::netio
