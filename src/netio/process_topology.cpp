#include "netio/process_topology.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace fbdr::netio {

namespace {

std::chrono::steady_clock::time_point deadline_after(int ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

}  // namespace

ProcessTopology::ProcessTopology(Options options)
    : options_(std::move(options)) {
  if (options_.node_binary.empty() || options_.workdir.empty()) {
    throw std::invalid_argument(
        "ProcessTopology needs node_binary and workdir");
  }
}

ProcessTopology::~ProcessTopology() {
  try {
    stop();
  } catch (...) {
  }
}

void ProcessTopology::add_root(const std::string& name) {
  if (!root_.empty()) throw std::logic_error("root already declared: " + root_);
  Node node;
  node.name = name;
  node.depth = 0;
  node.listen = SocketAddr::unix_path(options_.workdir + "/" + name + ".sock");
  node.control_addr =
      SocketAddr::unix_path(options_.workdir + "/" + name + ".ctl");
  root_ = name;
  order_.push_back(name);
  nodes_.emplace(name, std::move(node));
}

void ProcessTopology::add_relay(const std::string& name,
                                const std::string& parent,
                                std::vector<std::string> filter_specs) {
  const Node& up = node(parent);  // throws on unknown parent
  Node relay;
  relay.name = name;
  relay.parent = parent;
  relay.filters = std::move(filter_specs);
  relay.depth = up.depth + 1;
  relay.listen = SocketAddr::unix_path(options_.workdir + "/" + name + ".sock");
  relay.control_addr =
      SocketAddr::unix_path(options_.workdir + "/" + name + ".ctl");
  order_.push_back(name);
  nodes_.emplace(name, std::move(relay));
}

ProcessTopology::Node& ProcessTopology::node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node: " + name);
  return it->second;
}

const ProcessTopology::Node& ProcessTopology::node(
    const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) throw std::invalid_argument("unknown node: " + name);
  return it->second;
}

void ProcessTopology::spawn(Node& n) {
  std::vector<std::string> args = {
      options_.node_binary,
      "--role",    n.parent.empty() ? "root" : "relay",
      "--name",    n.name,
      "--suffix",  options_.suffix,
      "--listen",  n.listen.to_string(),
      "--control", n.control_addr.to_string(),
      "--session-limit", std::to_string(options_.session_time_limit),
  };
  if (!n.parent.empty()) {
    args.push_back("--parent");
    args.push_back(node(n.parent).listen.to_string());
    args.push_back("--parent-url");
    args.push_back("ldap://" + n.parent);
  }

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Reached only when exec fails; the parent sees it as ping timeout.
    std::_Exit(127);
  }
  n.pid = pid;
  n.client.reset();
}

void ProcessTopology::wait_ready(Node& n) {
  const auto deadline = deadline_after(options_.spawn_timeout_ms);
  std::string last_error = "never attempted";
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (n.pid > 0 && ::waitpid(n.pid, &status, WNOHANG) == n.pid) {
      n.pid = -1;
      throw std::runtime_error("node " + n.name + " exited during startup");
    }
    try {
      auto client = std::make_unique<ControlClient>(n.control_addr,
                                                    options_.control_timeout_ms);
      client->request("ping");
      n.client = std::move(client);
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  throw std::runtime_error("node " + n.name +
                           " not ready before deadline: " + last_error);
}

void ProcessTopology::install_filters(Node& n) {
  for (const std::string& spec : n.filters) {
    n.client->request("install " + spec);
  }
}

void ProcessTopology::start() {
  if (root_.empty()) throw std::logic_error("no root declared");
  for (const std::string& name : order_) {
    Node& n = node(name);
    spawn(n);
    wait_ready(n);
    install_filters(n);
  }
}

std::vector<std::string> ProcessTopology::relay_names_deepest_first() const {
  std::vector<std::string> names;
  for (const std::string& name : order_) {
    if (!node(name).parent.empty()) names.push_back(name);
  }
  std::stable_sort(names.begin(), names.end(),
                   [this](const std::string& a, const std::string& b) {
                     return node(a).depth > node(b).depth;
                   });
  return names;
}

void ProcessTopology::tick() {
  // Deepest-first, like TopologyRuntime::tick(): each relay pulls from its
  // parent (and pumps its own downstream sessions inside sync()) before the
  // parent's content moves again, then the root routes its journal and the
  // clock advances.
  for (const std::string& name : relay_names_deepest_first()) {
    Node& n = node(name);
    if (n.pid <= 0) continue;  // crashed: the tree degrades, later heals
    n.client->request("sync");
  }
  Node& r = node(root_);
  r.client->request("pump");
  r.client->request("tick 1");
}

ControlClient& ProcessTopology::control(const std::string& name) {
  Node& n = node(name);
  if (!n.client) throw std::runtime_error("node not running: " + name);
  return *n.client;
}

std::vector<std::string> ProcessTopology::keys(const std::string& name,
                                               const std::string& query_spec) {
  return control(name).request("keys " + query_spec);
}

std::map<std::string, std::string> ProcessTopology::health(
    const std::string& name) {
  return control(name).health();
}

void ProcessTopology::crash(const std::string& name) {
  Node& n = node(name);
  if (n.pid <= 0) return;
  reap(n, /*force=*/true);
}

void ProcessTopology::respawn(const std::string& name) {
  Node& n = node(name);
  if (n.pid > 0) throw std::logic_error("node still running: " + name);
  spawn(n);
  wait_ready(n);
  install_filters(n);
}

void ProcessTopology::reap(Node& n, bool force) {
  if (n.pid <= 0) return;
  if (force) {
    ::kill(n.pid, SIGKILL);
  } else if (n.client) {
    try {
      n.client->request("quit");
    } catch (const std::exception&) {
      ::kill(n.pid, SIGKILL);
    }
  } else {
    ::kill(n.pid, SIGKILL);
  }
  ::waitpid(n.pid, nullptr, 0);
  n.pid = -1;
  n.client.reset();
}

void ProcessTopology::stop() {
  // Children before parents: a relay quitting mid-sync against a dead
  // parent would just eat its retry budget.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    reap(node(*it), /*force=*/false);
  }
}

bool ProcessTopology::running(const std::string& name) const {
  return node(name).pid > 0;
}

int ProcessTopology::depth(const std::string& name) const {
  return node(name).depth;
}

}  // namespace fbdr::netio
