#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "wire/codec.h"

namespace fbdr::netio {

/// Turns an arbitrary-chunked byte stream back into whole wire frames.
///
/// TCP and Unix stream sockets deliver bytes, not messages: a single read
/// can hold half a header, three frames and the start of a fourth. The
/// reassembler buffers fed bytes, validates each frame header the moment 16
/// bytes of it exist (wire::Codec::validate_header — magic, version, length
/// bound), and emits complete header+payload frames in arrival order.
///
/// A hostile or corrupt header makes feed() throw wire::CodecError with the
/// buffered bytes intact; past that point the stream has no recoverable
/// framing, so callers must drop the connection (SocketPipe and EpollServer
/// both do). Frames already extracted before the bad header remain
/// retrievable via next_frame().
class FrameReassembler {
 public:
  /// Appends stream bytes and extracts every frame they complete. Throws
  /// wire::CodecError when the stream's next header is invalid.
  void feed(const std::uint8_t* data, std::size_t size);

  bool has_frame() const { return !frames_.empty(); }

  /// Pops the oldest complete frame (header + payload, ready for
  /// wire::Codec::deframe). Precondition: has_frame().
  wire::Bytes next_frame();

  /// Bytes buffered toward a not-yet-complete frame.
  std::size_t pending_bytes() const { return buffer_.size(); }

  void reset();

 private:
  std::vector<std::uint8_t> buffer_;
  std::deque<wire::Bytes> frames_;
  // Payload length declared by the validated header of the frame currently
  // being buffered; unset (SIZE_MAX) until 16 header bytes have arrived.
  std::size_t expected_payload_ = SIZE_MAX;
};

}  // namespace fbdr::netio
