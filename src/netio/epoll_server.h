#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "netio/frame_reassembler.h"
#include "netio/socket_addr.h"

namespace fbdr::resync {
class ReSyncEndpoint;
}

namespace fbdr::netio {

/// Nonblocking epoll event loop serving a resync::ReSyncEndpoint to any
/// number of SocketPipe clients over one listening socket.
///
/// Per connection it reassembles the byte stream into wire frames
/// (FrameReassembler), dispatches request frames to the endpoint, and
/// queues encoded responses back out. The semantics of the in-process
/// EndpointPipe are preserved exactly:
///
///  - A garbled frame (bad header, checksum mismatch, undecodable request)
///    makes the connection unrecoverable, so the server closes it; the
///    client surfaces net::TransportError and retries over a fresh
///    connection — the socket spelling of "the server drops the frame".
///  - Protocol rejections (stale cookie, busy, protocol, operation) cross
///    back as typed ErrorFrames in the same catch order, so the client-side
///    rethrow is type-exact.
///  - Abandon frames are one-way best effort: dispatched if they decode,
///    silently dropped if only their payload is garbled.
///
/// Writes are queued per connection and drained on EPOLLOUT; when a
/// connection's queue exceeds Options::max_write_buffer the server stops
/// reading from it (EPOLLIN paused) until the queue drains to half the
/// limit — backpressure instead of unbounded buffering against a slow
/// reader. Two more self-defence knobs harden the frame plane against
/// hostile or broken peers: Options::idle_timeout_ms reaps connections
/// that stall mid-frame (slow loris), Options::max_connections sheds
/// accepts beyond a cap; both are counted in Stats.
///
/// A second, line-based listener (listen_control) carries the process
/// topology's control plane: one text command per line in, the handler's
/// reply bytes out. Both listeners share the one loop, so a single-threaded
/// fbdr_node process never races control commands against frame dispatch.
///
/// Endpoint dispatch happens on the loop thread under endpoint_mutex();
/// tests and hosts that mutate the endpoint from another thread (pumping
/// the master, applying writes) take the same mutex via with_endpoint().
class EpollServer {
 public:
  struct Options {
    int backlog = 64;
    /// Queued-unsent bytes above which a connection's reads are paused.
    std::size_t max_write_buffer = 4u << 20;
    /// Frame connections with no read/write activity for this long are
    /// closed (slow-loris reaping; a trickling or stalled peer holds no fd
    /// forever). 0 = never. SocketPipe reconnects transparently, so a
    /// legitimately idle replica just pays one reconnect on its next poll.
    /// Control connections are exempt: the topology driver holds one open
    /// per node for the process's lifetime by design.
    int idle_timeout_ms = 0;
    /// Frame connections held open at most; beyond it new accepts are shed
    /// (accepted, counted, closed immediately) so a connection storm
    /// degrades loudly instead of exhausting fds. 0 = unlimited.
    std::size_t max_connections = 0;
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t garbled_closes = 0;
    std::uint64_t abandons = 0;
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t control_lines = 0;
    std::uint64_t idle_reaped = 0;   // connections closed by idle_timeout_ms
    std::uint64_t shed_accepts = 0;  // accepts shed at max_connections
  };

  /// Handles one control line (without its trailing '\n'); returns the
  /// exact bytes to write back. May call request_stop().
  using ControlHandler = std::function<std::string(const std::string& line)>;

  explicit EpollServer(resync::ReSyncEndpoint& endpoint)
      : EpollServer(endpoint, Options{}) {}
  EpollServer(resync::ReSyncEndpoint& endpoint, Options options);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds the frame listener; returns the bound address (TCP port 0
  /// resolved). Throws std::runtime_error on failure.
  SocketAddr listen(const SocketAddr& addr);

  /// Binds the line-based control listener.
  SocketAddr listen_control(const SocketAddr& addr, ControlHandler handler);

  /// Runs the loop on a background thread until stop().
  void start();

  /// Stops the background thread (idempotent; also called by ~EpollServer).
  void stop();

  /// Runs the loop inline on the calling thread until request_stop() — the
  /// single-threaded mode fbdr_node uses.
  void run();

  /// One bounded iteration of the loop; returns false once a stop was
  /// requested. Usable without start()/run() for deterministic stepping.
  bool poll_once(int timeout_ms);

  /// Signals the loop to exit (thread-safe, callable from handlers).
  void request_stop();

  Stats stats() const;

  /// Connections currently open on the frame listener.
  std::size_t open_connections() const;

  /// Serializes endpoint access against loop-thread dispatch.
  std::mutex& endpoint_mutex() { return endpoint_mutex_; }

  template <typename Fn>
  auto with_endpoint(Fn&& fn) {
    std::lock_guard<std::mutex> lock(endpoint_mutex_);
    return fn(*endpoint_);
  }

 private:
  enum class Role { FrameData, Control };

  struct Connection {
    int fd = -1;
    Role role = Role::FrameData;
    FrameReassembler reassembler;   // FrameData
    std::string line_buffer;        // Control
    std::vector<std::uint8_t> out;  // queued unsent bytes
    std::size_t out_offset = 0;
    bool want_write = false;
    bool read_paused = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  void accept_ready(int listen_fd, Role role);
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void dispatch_frame(Connection& conn, const wire::Bytes& frame);
  void dispatch_control(Connection& conn, const std::string& line);
  void enqueue(Connection& conn, const std::uint8_t* data, std::size_t size);
  void update_interest(Connection& conn);
  void close_connection(Connection& conn);
  void reap_idle();

  resync::ReSyncEndpoint* endpoint_;
  Options options_;
  std::mutex endpoint_mutex_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: request_stop() wakes a blocked epoll_wait
  int frame_listen_fd_ = -1;
  int control_listen_fd_ = -1;
  ControlHandler control_handler_;

  std::map<int, std::unique_ptr<Connection>> connections_;
  std::vector<int> doomed_;  // fds to close after the event batch

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> garbled_closes_{0};
  std::atomic<std::uint64_t> abandons_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::uint64_t> control_lines_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> shed_accepts_{0};
  std::atomic<std::size_t> open_connections_{0};
};

}  // namespace fbdr::netio
