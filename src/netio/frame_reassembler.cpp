#include "netio/frame_reassembler.h"

namespace fbdr::netio {

void FrameReassembler::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);

  for (;;) {
    if (expected_payload_ == SIZE_MAX) {
      if (buffer_.size() < wire::Codec::kFrameHeaderBytes) return;
      // Throws on bad magic/version/length; buffer_ stays intact so the
      // caller can inspect, but the stream itself is beyond recovery.
      expected_payload_ = wire::Codec::validate_header(buffer_.data());
    }
    const std::size_t frame_size =
        wire::Codec::kFrameHeaderBytes + expected_payload_;
    if (buffer_.size() < frame_size) return;

    frames_.emplace_back(buffer_.begin(),
                         buffer_.begin() + static_cast<long>(frame_size));
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(frame_size));
    expected_payload_ = SIZE_MAX;
  }
}

wire::Bytes FrameReassembler::next_frame() {
  wire::Bytes frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void FrameReassembler::reset() {
  buffer_.clear();
  frames_.clear();
  expected_payload_ = SIZE_MAX;
}

}  // namespace fbdr::netio
