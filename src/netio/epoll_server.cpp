#include "netio/epoll_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "ldap/error.h"
#include "net/channel.h"
#include "resync/endpoint.h"

namespace fbdr::netio {

namespace {

wire::Bytes encode_error_frame(wire::ErrorFrame::Kind kind,
                               const std::string& message,
                               std::int32_t result_code = 0) {
  wire::ErrorFrame error;
  error.kind = kind;
  error.result_code = result_code;
  error.message = message;
  return wire::Codec::frame(wire::Codec::encode_error(error));
}

}  // namespace

EpollServer::EpollServer(resync::ReSyncEndpoint& endpoint, Options options)
    : endpoint_(&endpoint), options_(options) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EpollServer::~EpollServer() {
  stop();
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  if (frame_listen_fd_ >= 0) ::close(frame_listen_fd_);
  if (control_listen_fd_ >= 0) ::close(control_listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SocketAddr EpollServer::listen(const SocketAddr& addr) {
  SocketAddr bound;
  std::string error;
  frame_listen_fd_ = open_listener(addr, options_.backlog, &bound, &error);
  if (frame_listen_fd_ < 0) {
    throw std::runtime_error("listen " + addr.to_string() + ": " + error);
  }
  set_nonblocking(frame_listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = frame_listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, frame_listen_fd_, &ev);
  return bound;
}

SocketAddr EpollServer::listen_control(const SocketAddr& addr,
                                       ControlHandler handler) {
  SocketAddr bound;
  std::string error;
  control_listen_fd_ = open_listener(addr, options_.backlog, &bound, &error);
  if (control_listen_fd_ < 0) {
    throw std::runtime_error("listen " + addr.to_string() + ": " + error);
  }
  control_handler_ = std::move(handler);
  set_nonblocking(control_listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = control_listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, control_listen_fd_, &ev);
  return bound;
}

void EpollServer::start() {
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void EpollServer::stop() {
  request_stop();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void EpollServer::run() {
  while (poll_once(200)) {
  }
}

void EpollServer::request_stop() {
  stop_requested_.store(true);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

bool EpollServer::poll_once(int timeout_ms) {
  if (stop_requested_.load()) return false;

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0 && errno != EINTR) {
    throw std::runtime_error(std::string("epoll_wait: ") +
                             std::strerror(errno));
  }

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;

    if (fd == wake_fd_) {
      std::uint64_t drain;
      while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    if (fd == frame_listen_fd_) {
      accept_ready(fd, Role::FrameData);
      continue;
    }
    if (fd == control_listen_fd_) {
      accept_ready(fd, Role::Control);
      continue;
    }

    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;  // closed earlier in this batch
    Connection& conn = *it->second;
    if (mask & (EPOLLERR | EPOLLHUP)) {
      close_connection(conn);
      continue;
    }
    if (mask & EPOLLOUT) write_ready(conn);
    if (conn.fd >= 0 && (mask & EPOLLIN)) read_ready(conn);
  }

  if (options_.idle_timeout_ms > 0) reap_idle();

  for (const int fd : doomed_) connections_.erase(fd);
  doomed_.clear();

  return !stop_requested_.load();
}

void EpollServer::reap_idle() {
  const auto deadline =
      std::chrono::steady_clock::now() -
      std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [fd, conn] : connections_) {
    (void)fd;
    // Control connections are exempt: the topology driver parks one per
    // node for the process's lifetime.
    if (conn->role != Role::FrameData || conn->fd < 0) continue;
    if (conn->last_activity <= deadline) {
      idle_reaped_.fetch_add(1);
      close_connection(*conn);
    }
  }
}

void EpollServer::accept_ready(int listen_fd, Role role) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained

    // Accept shedding: over the cap the connection is closed on the spot.
    // Accept-then-close (rather than leaving it in the backlog) tells the
    // peer immediately and keeps the listen queue from filling against
    // well-behaved clients.
    if (role == Role::FrameData && options_.max_connections > 0 &&
        open_connections_.load() >= options_.max_connections) {
      shed_accepts_.fetch_add(1);
      ::close(fd);
      continue;
    }

    // The kernel may hand back an fd number closed earlier in this same
    // event batch; un-doom it so the end-of-batch sweep spares the new
    // connection that now owns the number.
    std::erase(doomed_, fd);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->role = role;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_[fd] = std::move(conn);
    accepted_.fetch_add(1);
    if (role == Role::FrameData) open_connections_.fetch_add(1);
  }
}

void EpollServer::read_ready(Connection& conn) {
  conn.last_activity = std::chrono::steady_clock::now();
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      close_connection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_connection(conn);
      return;
    }

    if (conn.role == Role::Control) {
      conn.line_buffer.append(reinterpret_cast<const char*>(chunk),
                              static_cast<std::size_t>(n));
      std::size_t newline;
      while ((newline = conn.line_buffer.find('\n')) != std::string::npos) {
        std::string line = conn.line_buffer.substr(0, newline);
        conn.line_buffer.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        dispatch_control(conn, line);
        if (conn.fd < 0) return;
      }
      continue;
    }

    try {
      conn.reassembler.feed(chunk, static_cast<std::size_t>(n));
    } catch (const wire::CodecError&) {
      // The stream's framing is gone; the connection is unrecoverable.
      // Closing it is the socket spelling of "the server drops the frame":
      // the client sees a transport failure and retries over a fresh
      // connection with its replay-safe cookie.
      garbled_closes_.fetch_add(1);
      close_connection(conn);
      return;
    }
    while (conn.reassembler.has_frame()) {
      dispatch_frame(conn, conn.reassembler.next_frame());
      if (conn.fd < 0) return;
    }
    if (conn.read_paused) return;  // backpressure kicked in mid-batch
  }
}

void EpollServer::dispatch_frame(Connection& conn, const wire::Bytes& frame) {
  frames_in_.fetch_add(1);

  wire::Bytes payload;
  wire::FrameKind kind;
  try {
    payload = wire::Codec::deframe(frame);
    kind = wire::Codec::kind_of(payload);
  } catch (const wire::CodecError&) {
    garbled_closes_.fetch_add(1);
    close_connection(conn);
    return;
  }

  if (kind == wire::FrameKind::Abandon) {
    // One-way, best effort — mirror EndpointPipe::send: a garbled abandon
    // payload is silently dropped, a decodable one is dispatched.
    try {
      const std::string cookie = wire::Codec::decode_abandon(payload);
      std::lock_guard<std::mutex> lock(endpoint_mutex_);
      endpoint_->abandon(cookie);
      abandons_.fetch_add(1);
    } catch (...) {
    }
    return;
  }

  if (kind != wire::FrameKind::Request) {
    garbled_closes_.fetch_add(1);
    close_connection(conn);
    return;
  }

  wire::RequestFrame request;
  try {
    request = wire::Codec::decode_request(payload);
  } catch (const wire::CodecError&) {
    garbled_closes_.fetch_add(1);
    close_connection(conn);
    return;
  }

  // Same catch order as EndpointPipe::transfer: the specific protocol
  // errors ship as their own kinds so the client-side rethrow stays
  // type-exact across the process boundary.
  wire::Bytes reply;
  try {
    std::lock_guard<std::mutex> lock(endpoint_mutex_);
    reply = wire::Codec::frame(wire::Codec::encode_response(
        endpoint_->handle(request.query, request.control)));
  } catch (const ldap::StaleCookieError& e) {
    reply = encode_error_frame(wire::ErrorFrame::Kind::StaleCookie, e.what());
  } catch (const ldap::BusyError& e) {
    reply = encode_error_frame(wire::ErrorFrame::Kind::Busy, e.what());
  } catch (const ldap::ProtocolError& e) {
    reply = encode_error_frame(wire::ErrorFrame::Kind::Protocol, e.what());
  } catch (const ldap::OperationError& e) {
    reply = encode_error_frame(wire::ErrorFrame::Kind::Operation, e.what(),
                               static_cast<std::int32_t>(e.code()));
  }
  frames_out_.fetch_add(1);
  enqueue(conn, reply.data(), reply.size());
}

void EpollServer::dispatch_control(Connection& conn, const std::string& line) {
  control_lines_.fetch_add(1);
  if (!control_handler_) return;
  const std::string reply = control_handler_(line);
  if (!reply.empty()) {
    enqueue(conn, reinterpret_cast<const std::uint8_t*>(reply.data()),
            reply.size());
  }
}

void EpollServer::enqueue(Connection& conn, const std::uint8_t* data,
                          std::size_t size) {
  // Fast path: nothing queued — write as much as the kernel takes now.
  std::size_t written = 0;
  if (conn.out.size() == conn.out_offset) {
    conn.out.clear();
    conn.out_offset = 0;
    while (written < size) {
      const ssize_t n =
          ::send(conn.fd, data + written, size - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(conn);
        return;
      }
      written += static_cast<std::size_t>(n);
    }
  }
  if (written == size && conn.out.size() == conn.out_offset) {
    update_interest(conn);
    return;
  }
  conn.out.insert(conn.out.end(), data + written, data + size);
  update_interest(conn);
}

void EpollServer::write_ready(Connection& conn) {
  conn.last_activity = std::chrono::steady_clock::now();
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(n);
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  update_interest(conn);
}

void EpollServer::update_interest(Connection& conn) {
  const std::size_t queued = conn.out.size() - conn.out_offset;
  const bool want_write = queued > 0;
  // Backpressure: stop reading from a connection whose replies we cannot
  // deliver, resume once the queue drains (hysteresis at half the limit).
  bool read_paused = conn.read_paused;
  if (!read_paused && queued > options_.max_write_buffer) {
    read_paused = true;
    backpressure_pauses_.fetch_add(1);
  } else if (read_paused && queued <= options_.max_write_buffer / 2) {
    read_paused = false;
  }
  if (want_write == conn.want_write && read_paused == conn.read_paused) return;
  conn.want_write = want_write;
  conn.read_paused = read_paused;

  epoll_event ev{};
  ev.events = (read_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EpollServer::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  closed_.fetch_add(1);
  if (conn.role == Role::FrameData) open_connections_.fetch_sub(1);
  doomed_.push_back(conn.fd);
  conn.fd = -1;
}

EpollServer::Stats EpollServer::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.closed = closed_.load();
  s.frames_in = frames_in_.load();
  s.frames_out = frames_out_.load();
  s.garbled_closes = garbled_closes_.load();
  s.abandons = abandons_.load();
  s.backpressure_pauses = backpressure_pauses_.load();
  s.control_lines = control_lines_.load();
  s.idle_reaped = idle_reaped_.load();
  s.shed_accepts = shed_accepts_.load();
  return s;
}

std::size_t EpollServer::open_connections() const {
  return open_connections_.load();
}

}  // namespace fbdr::netio
