#include "netio/socket_addr.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace fbdr::netio {

namespace {

std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

int make_socket(SocketAddr::Kind kind, std::string* error) {
  const int domain = kind == SocketAddr::Kind::Tcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0 && error) *error = errno_text("socket");
  return fd;
}

// Fills a sockaddr for `addr`; returns the length to pass to bind/connect,
// or 0 with `error` filled (bad host, over-long unix path).
socklen_t fill_sockaddr(const SocketAddr& addr, sockaddr_storage* storage,
                        std::string* error) {
  std::memset(storage, 0, sizeof(*storage));
  if (addr.kind == SocketAddr::Kind::Tcp) {
    auto* in = reinterpret_cast<sockaddr_in*>(storage);
    in->sin_family = AF_INET;
    in->sin_port = htons(addr.port);
    const char* host = addr.host.empty() ? "127.0.0.1" : addr.host.c_str();
    if (::inet_pton(AF_INET, host, &in->sin_addr) != 1) {
      if (error) *error = "bad IPv4 host: " + addr.host;
      return 0;
    }
    return sizeof(sockaddr_in);
  }
  auto* un = reinterpret_cast<sockaddr_un*>(storage);
  un->sun_family = AF_UNIX;
  if (addr.path.size() + 1 > sizeof(un->sun_path)) {
    if (error) *error = "unix socket path too long: " + addr.path;
    return 0;
  }
  std::memcpy(un->sun_path, addr.path.c_str(), addr.path.size() + 1);
  return sizeof(sockaddr_un);
}

}  // namespace

SocketAddr SocketAddr::tcp(std::string host, std::uint16_t port) {
  SocketAddr addr;
  addr.kind = Kind::Tcp;
  addr.host = std::move(host);
  addr.port = port;
  return addr;
}

SocketAddr SocketAddr::unix_path(std::string path) {
  SocketAddr addr;
  addr.kind = Kind::Unix;
  addr.path = std::move(path);
  return addr;
}

SocketAddr SocketAddr::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    std::string path = spec.substr(5);
    if (path.empty()) throw std::invalid_argument("empty unix socket path: " + spec);
    return unix_path(std::move(path));
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::size_t colon = spec.rfind(':');
    if (colon == 3) throw std::invalid_argument("missing port: " + spec);
    const std::string host = spec.substr(4, colon - 4);
    const std::string port_text = spec.substr(colon + 1);
    if (host.empty() || port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("bad tcp address: " + spec);
    }
    const unsigned long port = std::stoul(port_text);
    if (port > 65535) throw std::invalid_argument("port out of range: " + spec);
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("address must be tcp:host:port or unix:/path: " +
                              spec);
}

std::string SocketAddr::to_string() const {
  if (kind == Kind::Tcp) return "tcp:" + host + ":" + std::to_string(port);
  return "unix:" + path;
}

bool sockets_available(std::string* reason) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (reason) *reason = errno_text("socket(AF_INET)");
    return false;
  }
  sockaddr_in in{};
  in.sin_family = AF_INET;
  in.sin_port = 0;  // any free port
  in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const bool ok = ::bind(fd, reinterpret_cast<sockaddr*>(&in), sizeof(in)) == 0 &&
                  ::listen(fd, 1) == 0;
  if (!ok && reason) *reason = errno_text("bind/listen loopback");
  ::close(fd);
  return ok;
}

int open_listener(const SocketAddr& addr, int backlog, SocketAddr* bound,
                  std::string* error) {
  const int fd = make_socket(addr.kind, error);
  if (fd < 0) return -1;

  if (addr.kind == SocketAddr::Kind::Tcp) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    ::unlink(addr.path.c_str());  // a crashed predecessor's leftover
  }

  sockaddr_storage storage;
  const socklen_t len = fill_sockaddr(addr, &storage, error);
  if (len == 0 || ::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0 ||
      ::listen(fd, backlog) != 0) {
    if (error && error->empty()) *error = errno_text("bind/listen");
    ::close(fd);
    return -1;
  }

  if (bound) {
    *bound = addr;
    if (addr.kind == SocketAddr::Kind::Tcp) {
      sockaddr_in in{};
      socklen_t in_len = sizeof(in);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&in), &in_len) == 0) {
        bound->port = ntohs(in.sin_port);
      }
    }
  }
  return fd;
}

int open_client(const SocketAddr& addr, int timeout_ms, std::string* error) {
  const int fd = make_socket(addr.kind, error);
  if (fd < 0) return -1;

  sockaddr_storage storage;
  const socklen_t len = fill_sockaddr(addr, &storage, error);
  if (len == 0) {
    ::close(fd);
    return -1;
  }

  // Nonblocking connect + poll gives the deadline; the fd goes back to
  // blocking mode afterwards (SocketPipe does its own read deadlines).
  set_nonblocking(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      if (error) *error = errno_text("connect");
      ::close(fd);
      return -1;
    }
    // EINTR-safe wait: a signal (SIGCHLD from a supervised child dying is
    // routine here) must not burn the connect attempt — retry the poll with
    // the remaining slice of the deadline.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            give_up - std::chrono::steady_clock::now())
                            .count();
      ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(left, 0)));
      if (ready >= 0 || errno != EINTR) break;
      if (std::chrono::steady_clock::now() >= give_up) {
        ready = 0;  // interrupted past the deadline: report a timeout
        break;
      }
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    if (ready <= 0 || so_error != 0) {
      if (error) {
        *error = ready <= 0 ? "connect timed out after " +
                                  std::to_string(timeout_ms) + "ms to " +
                                  addr.to_string()
                            : "connect: " + std::string(std::strerror(so_error));
      }
      ::close(fd);
      return -1;
    }
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace fbdr::netio
