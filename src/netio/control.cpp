#include "netio/control.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace fbdr::netio {

ControlClient::ControlClient(const SocketAddr& addr, int timeout_ms)
    : timeout_ms_(timeout_ms), addr_(addr) {
  std::string error;
  fd_ = open_client(addr, timeout_ms, &error);
  if (fd_ < 0) {
    throw std::runtime_error("control connect " + addr.to_string() + ": " +
                             error);
  }
}

ControlClient::~ControlClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ControlClient::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    // EINTR-safe wait with the deadline recomputed per retry: SIGCHLD from
    // supervised children lands on this thread routinely.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms_);
    pollfd pfd{fd_, POLLIN, 0};
    int ready;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            give_up - std::chrono::steady_clock::now())
                            .count();
      ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(left, 0)));
      if (ready >= 0 || errno != EINTR) break;
      if (std::chrono::steady_clock::now() >= give_up) {
        ready = 0;
        break;
      }
    }
    if (ready <= 0) {
      throw std::runtime_error("control reply timed out (" +
                               addr_.to_string() + ")");
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      throw std::runtime_error("control connection closed (" +
                               addr_.to_string() + ")");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::vector<std::string> ControlClient::request(const std::string& line) {
  const std::string out = line + "\n";
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("control send: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }

  const std::string status = read_line();
  if (status.rfind("err ", 0) == 0) {
    throw std::runtime_error("control command '" + line +
                             "' failed: " + status.substr(4));
  }
  if (status.rfind("ok ", 0) != 0) {
    throw std::runtime_error("malformed control reply: " + status);
  }
  const unsigned long count = std::stoul(status.substr(3));
  std::vector<std::string> payload;
  payload.reserve(count);
  for (unsigned long i = 0; i < count; ++i) payload.push_back(read_line());
  return payload;
}

std::map<std::string, std::string> ControlClient::health() {
  std::map<std::string, std::string> map;
  for (const std::string& line : request("health")) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    map[line.substr(0, space)] = line.substr(space + 1);
  }
  return map;
}

}  // namespace fbdr::netio
