#pragma once

#include <map>
#include <string>
#include <vector>

#include "netio/socket_addr.h"

namespace fbdr::netio {

/// Client side of the fbdr_node control plane.
///
/// The control plane is a deliberately boring line protocol, separate from
/// the wire frame codec: one text command per line, one reply of
///
///   ok <n>\n        followed by n payload lines, or
///   err <message>\n
///
/// It exists so the topology driver can do to a node process exactly what
/// TopologyRuntime does to an in-process node — add filters, drive sync
/// rounds, apply master writes, advance logical time, inspect content —
/// without those operations racing the frame traffic: the node handles
/// control lines on the same epoll loop thread that dispatches frames.
///
/// Commands (role in parens when restricted):
///
///   ping                                     liveness probe
///   install <base>|<scope>|<filter>   (relay) declare a replicated query
///   installall                        (relay) install_all(); payload "1"/"0"
///   sync                              (relay) one upstream sync round
///   pump                              (root)  route journal into sessions
///   tick <n>                                 advance the logical clock
///   apply add <dn>|<a>=<v1>,<v2>;...  (root)  journaled add
///   apply del <dn>                    (root)  journaled delete
///   apply mod <dn>|<a>=<v1>,<v2>      (root)  journaled replace
///   keys <base>|<scope>|<filter>             sorted norm keys of the local
///                                            content matching the query
///   health                                   "key value" lines (epoch,
///                                            recoveries, degraded, ...)
///   quit                                     stop the node's loop
///
/// <scope> is base|one|sub. Attribute values in apply must not contain the
/// '|' ';' ',' '=' delimiters or newlines — the topology tests' fixtures
/// never do, and the control plane is a test/driver surface, not the
/// replication protocol (which ships length-prefixed TLV frames precisely
/// so it never has this restriction).
class ControlClient {
 public:
  ControlClient(const SocketAddr& addr, int timeout_ms = 10000);
  ~ControlClient();

  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  /// Sends one command line, returns the payload lines of an "ok" reply.
  /// Throws std::runtime_error on "err", transport failure or timeout.
  std::vector<std::string> request(const std::string& line);

  /// health command parsed into a key -> value map.
  std::map<std::string, std::string> health();

 private:
  std::string read_line();

  int fd_ = -1;
  int timeout_ms_;
  std::string buffer_;
  SocketAddr addr_;
};

}  // namespace fbdr::netio
