#pragma once

#include <memory>
#include <string>

#include "net/channel.h"
#include "netio/epoll_server.h"
#include "netio/socket_addr.h"
#include "resync/master.h"
#include "server/directory_server.h"
#include "topology/relay_node.h"

namespace fbdr::netio {

/// Everything one replication node process contains, assembled: the node
/// itself (a root ReSyncMaster over a DirectoryServer, or a RelayNode with
/// an upstream SocketPipe to its parent), an EpollServer publishing it to
/// downstream frame connections, and the control-plane command handlers
/// (see control.h for the protocol).
///
/// fbdr_node's main() is a thin argv wrapper around this class; tests can
/// also run a NodeHost in-process (server().start()) to get the exact
/// serving stack without a fork.
///
/// Threading: the node is single-threaded by design — run() puts frame
/// dispatch AND control handling on the one epoll loop thread, so a sync
/// round can never race a downstream poll. A relay's upstream exchanges
/// block that loop briefly; its parent lives in another process with its
/// own loop, so the tree's deepest-first tick order (leaf sync before
/// parent pump, exactly TopologyRuntime::tick()) proceeds without
/// deadlock.
class NodeHost {
 public:
  enum class Role { Root, Relay };

  struct Options {
    Role role = Role::Root;
    std::string name;
    std::string suffix = "o=xyz";
    SocketAddr listen;   // frame listener (downstream sessions)
    SocketAddr control;  // control-plane listener
    // Relay only:
    SocketAddr parent;        // parent's frame listener
    std::string parent_url;   // referral target ("ldap://<parent>")
    net::RetryPolicy retry{4, 1, 2.0, 16, 0};
    std::uint64_t session_time_limit = 0;
    /// Upstream SocketPipe deadlines (relay only). Chaos tests shrink these
    /// so a blackholed link fails in milliseconds, not the 10s default.
    int io_timeout_ms = 10000;
    int connect_timeout_ms = 2000;
    /// Frame-plane self-defence, passed through to EpollServer.
    int idle_timeout_ms = 0;
    std::size_t max_connections = 0;
  };

  explicit NodeHost(Options options);

  /// Binds both listeners and runs the loop inline until a quit command.
  void run();

  EpollServer& server() { return *server_; }
  resync::ReSyncEndpoint& endpoint();

 private:
  std::string handle_control(const std::string& line);
  std::string do_apply(const std::string& rest);
  std::string do_keys(const std::string& spec);
  std::string do_health();

  Options options_;
  // Root role:
  std::unique_ptr<server::DirectoryServer> store_;
  std::unique_ptr<resync::ReSyncMaster> master_;
  // Relay role:
  std::unique_ptr<topology::RelayNode> relay_;

  std::unique_ptr<EpollServer> server_;
};

/// Parses "<base>|<scope>|<filter>" with scope base|one|sub (the query
/// spelling of the control plane and ProcessTopology filter specs).
ldap::Query parse_query_spec(const std::string& spec);

}  // namespace fbdr::netio
