#include "netio/socket_pipe.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace fbdr::netio {

SocketPipe::SocketPipe(Options options) : options_(std::move(options)) {}

SocketPipe::~SocketPipe() { close(); }

void SocketPipe::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reassembler_.reset();
}

void SocketPipe::fail(const std::string& what) {
  close();
  throw net::TransportError(what + " (" + options_.addr.to_string() + ")");
}

void SocketPipe::ensure_connected() {
  if (fd_ >= 0) return;
  std::string error;
  const int fd = open_client(options_.addr, options_.connect_timeout_ms, &error);
  if (fd < 0) fail("connect failed: " + error);
  fd_ = fd;
  reassembler_.reset();
  ++connects_;
}

void SocketPipe::write_all(const wire::Bytes& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

wire::Bytes SocketPipe::read_frame() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.io_timeout_ms);
  std::uint8_t chunk[4096];
  while (!reassembler_.has_frame()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) fail("response timed out");

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) fail("response timed out");

    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) fail("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("recv failed: ") + std::strerror(errno));
    }
    try {
      reassembler_.feed(chunk, static_cast<std::size_t>(n));
    } catch (const wire::CodecError& e) {
      // The response stream lost its framing — unrecoverable connection.
      fail(std::string("garbled response stream: ") + e.what());
    }
  }
  return reassembler_.next_frame();
}

wire::Bytes SocketPipe::transfer(const wire::Bytes& frame) {
  ensure_connected();
  write_all(frame);
  return read_frame();
}

void SocketPipe::send(const wire::Bytes& frame) {
  // One-way, best effort: failures (including failure to connect) are
  // swallowed exactly like EndpointPipe swallows a garbled abandon.
  try {
    ensure_connected();
    write_all(frame);
  } catch (const net::TransportError&) {
  }
}

void SocketPipe::elapse(std::uint64_t ticks) {
  if (options_.backoff_ms_per_tick > 0 && ticks > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::uint64_t>(options_.backoff_ms_per_tick) * ticks));
  }
}

}  // namespace fbdr::netio
